#include "generators/imbalance.h"

#include <cmath>

namespace ccd {

std::vector<double> ImbalanceSchedule::LadderPriors(double ir) const {
  const int k = opt_.num_classes;
  std::vector<double> p(k, 1.0);
  if (ir < 1.0) ir = 1.0;
  if (k > 1 && ir > 1.0) {
    // Geometric spacing: p_i ∝ ir^(-i/(k-1)), so p_0/p_{k-1} = ir exactly.
    double total = 0.0;
    for (int i = 0; i < k; ++i) {
      p[i] = std::pow(ir, -static_cast<double>(i) / (k - 1));
      total += p[i];
    }
    for (double& v : p) v /= total;
  } else {
    for (double& v : p) v = 1.0 / k;
  }
  return p;
}

double ImbalanceSchedule::IrAt(uint64_t t) const {
  if (!opt_.dynamic || opt_.ir_period == 0) return opt_.base_ir;
  // Triangular wave between ir_low and ir_high.
  double phase = static_cast<double>(t % opt_.ir_period) /
                 static_cast<double>(opt_.ir_period);
  double tri = phase < 0.5 ? 2.0 * phase : 2.0 * (1.0 - phase);
  return opt_.ir_low + (opt_.ir_high - opt_.ir_low) * tri;
}

int ImbalanceSchedule::RotationAt(uint64_t t) const {
  if (opt_.role_switch_period == 0) return 0;
  return static_cast<int>((t / opt_.role_switch_period) %
                          static_cast<uint64_t>(opt_.num_classes));
}

int ImbalanceSchedule::ClassAtRung(uint64_t t, int rung) const {
  const int k = opt_.num_classes;
  int rot = RotationAt(t);
  // Rotation r places class (rung + r) mod k on ladder rung `rung`.
  return (rung + rot) % k;
}

std::vector<double> ImbalanceSchedule::PriorsAt(uint64_t t) const {
  const int k = opt_.num_classes;
  std::vector<double> ladder = LadderPriors(IrAt(t));
  std::vector<double> cur(k, 0.0);
  int rot = RotationAt(t);
  for (int rung = 0; rung < k; ++rung) {
    cur[(rung + rot) % k] = ladder[rung];
  }
  if (opt_.role_switch_period == 0) return cur;

  // Cross-fade into the next rotation near the switch boundary so the
  // priors change continuously rather than jumping.
  uint64_t into = t % opt_.role_switch_period;
  uint64_t to_boundary = opt_.role_switch_period - into;
  if (to_boundary < opt_.role_switch_width) {
    double alpha = 1.0 - static_cast<double>(to_boundary) /
                             static_cast<double>(opt_.role_switch_width);
    std::vector<double> next(k, 0.0);
    int nrot = (rot + 1) % k;
    for (int rung = 0; rung < k; ++rung) {
      next[(rung + nrot) % k] = ladder[rung];
    }
    for (int i = 0; i < k; ++i) {
      cur[i] = (1.0 - alpha) * cur[i] + alpha * next[i];
    }
  }
  return cur;
}

}  // namespace ccd
