#include "generators/agrawal.h"

#include <algorithm>
#include <cmath>

namespace ccd {

AgrawalConcept::AgrawalConcept(const Options& options, uint64_t seed)
    : schema_(std::max(options.num_features, kBaseAttributes),
              options.num_classes, "agrawal"),
      opt_(options) {
  opt_.num_features = schema_.num_features;
  opt_.function_id =
      ((opt_.function_id % kNumFunctions) + kNumFunctions) % kNumFunctions;
  ComputeThresholds(seed ^ 0xc2b2ae3d27d4eb4fULL);
}

AgrawalConcept::Raw AgrawalConcept::DrawRaw(Rng* rng) {
  Raw r;
  r.salary = rng->Uniform(20000.0, 150000.0);
  r.commission = r.salary >= 75000.0 ? 0.0 : rng->Uniform(10000.0, 75000.0);
  r.age = static_cast<double>(rng->UniformInt(20, 80));
  r.elevel = static_cast<double>(rng->UniformInt(0, 4));
  r.car = static_cast<double>(rng->UniformInt(1, 20));
  r.zipcode = static_cast<double>(rng->UniformInt(0, 8));
  r.hvalue = (9.0 - r.zipcode) * 100000.0 * rng->Uniform(0.5, 1.5);
  r.hyears = static_cast<double>(rng->UniformInt(1, 30));
  r.loan = rng->Uniform(0.0, 500000.0);
  return r;
}

double AgrawalConcept::Score(int id, const Raw& r) {
  // Continuous analogues of the ten classic Agrawal predicate functions;
  // each keeps the original's driving attributes and piecewise structure.
  switch (id) {
    case 0:  // Classic F1: age bands.
      return r.age;
    case 1:  // F2: salary within age bands.
      if (r.age < 40.0) return r.salary;
      if (r.age < 60.0) return 0.5 * r.salary + 50000.0;
      return 0.25 * r.salary + 100000.0;
    case 2:  // F3: education within age bands.
      if (r.age < 40.0) return r.elevel * 40000.0 + 0.2 * r.salary;
      if (r.age < 60.0) return (4.0 - r.elevel) * 40000.0 + 0.2 * r.salary;
      return r.elevel * 20000.0 + 0.4 * r.salary;
    case 3:  // F4: salary/education interplay.
      return r.elevel < 2.0 ? r.salary + r.commission
                            : r.salary - 25000.0 * r.elevel;
    case 4:  // F5: salary + loan within age bands.
      if (r.age < 40.0) return r.salary + 0.25 * r.loan;
      if (r.age < 60.0) return 0.5 * (r.salary + 0.25 * r.loan) + 37500.0;
      return 0.3 * r.salary + 0.1 * r.loan + 80000.0;
    case 5:  // F6: total income within age bands.
      if (r.age < 40.0) return r.salary + r.commission;
      if (r.age < 60.0) return 0.7 * (r.salary + r.commission) + 30000.0;
      return 0.4 * (r.salary + r.commission) + 70000.0;
    case 6:  // F7: disposable income, 2x(salary+commission) - loan/5.
      return 2.0 * (r.salary + r.commission) - r.loan / 5.0;
    case 7:  // F8: disposable minus education cost.
      return 2.0 * (r.salary + r.commission) - 5000.0 * r.elevel - 0.2 * r.loan;
    case 8:  // F9: adds house equity.
      return 2.0 * (r.salary + r.commission) - 5000.0 * r.elevel +
             0.2 * r.hvalue - 0.4 * r.loan;
    case 9:  // F10: house equity based on years owned.
    default:
      return 0.1 * r.hvalue * (r.hyears - 10.0) + 0.5 * r.salary - 0.2 * r.loan;
  }
}

void AgrawalConcept::ComputeThresholds(uint64_t probe_seed) {
  Rng rng(probe_seed);
  std::vector<double> scores(static_cast<size_t>(opt_.probe_samples));
  for (double& s : scores) {
    s = Score(opt_.function_id, DrawRaw(&rng));
  }
  std::sort(scores.begin(), scores.end());
  thresholds_.clear();
  for (int k = 1; k < opt_.num_classes; ++k) {
    size_t idx = static_cast<size_t>(
        static_cast<double>(k) / opt_.num_classes * scores.size());
    if (idx >= scores.size()) idx = scores.size() - 1;
    thresholds_.push_back(scores[idx]);
  }
}

int AgrawalConcept::Classify(double score) const {
  int k = 0;
  while (k < static_cast<int>(thresholds_.size()) &&
         score >= thresholds_[static_cast<size_t>(k)]) {
    ++k;
  }
  return k;
}

Instance AgrawalConcept::Sample(Rng* rng) const {
  Raw r = DrawRaw(rng);
  int label = Classify(Score(opt_.function_id, r));

  std::vector<double> x(static_cast<size_t>(opt_.num_features));
  // Min-max scaled base attributes.
  x[0] = (r.salary - 20000.0) / 130000.0;
  x[1] = r.commission / 75000.0;
  x[2] = (r.age - 20.0) / 60.0;
  x[3] = r.elevel / 4.0;
  x[4] = (r.car - 1.0) / 19.0;
  x[5] = r.zipcode / 8.0;
  x[6] = r.hvalue / (9.0 * 150000.0);
  x[7] = (r.hyears - 1.0) / 29.0;
  x[8] = r.loan / 500000.0;
  for (size_t i = kBaseAttributes; i < x.size(); ++i) x[i] = rng->NextDouble();

  if (opt_.attribute_noise > 0.0) {
    for (size_t i = 0; i < static_cast<size_t>(kBaseAttributes); ++i) {
      x[i] = std::clamp(x[i] + rng->Gaussian(0.0, opt_.attribute_noise), 0.0,
                        1.0);
    }
  }
  return Instance(std::move(x), label);
}

}  // namespace ccd
