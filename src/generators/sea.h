#ifndef CCD_GENERATORS_SEA_H_
#define CCD_GENERATORS_SEA_H_

#include <memory>
#include <vector>

#include "generators/concept.h"

namespace ccd {

/// Multi-class SEA concept (Street & Kim's SEA generalized): two of the
/// features are relevant, their sum is banded into K classes by quantile
/// thresholds; the remaining features are irrelevant noise. Concept
/// variants rotate *which* pair of features is relevant, giving a sharp,
/// structural drift. Included beyond the paper's benchmark list to widen
/// generator coverage for tests and examples.
class SeaConcept : public Concept {
 public:
  struct Options {
    int num_features = 3;
    int num_classes = 2;
    int variant = 0;          ///< Selects the relevant feature pair.
    double score_noise = 0.1; ///< Class overlap control.
    int probe_samples = 4096;
  };

  SeaConcept(const Options& options, uint64_t seed);

  const StreamSchema& schema() const override { return schema_; }
  Instance Sample(Rng* rng) const override;

 private:
  int Classify(double score) const;

  StreamSchema schema_;
  Options opt_;
  int f1_ = 0, f2_ = 1;
  std::vector<double> thresholds_;
};

}  // namespace ccd

#endif  // CCD_GENERATORS_SEA_H_
