#include "generators/concept.h"

namespace ccd {

std::vector<double> Concept::SampleForClass(int k, Rng* rng) const {
  Instance last;
  for (int i = 0; i < kMaxRejectionTries; ++i) {
    last = Sample(rng);
    if (last.label == k) return std::move(last.features);
  }
  return std::move(last.features);
}

std::unique_ptr<Concept> Concept::Interpolate(const Concept& /*target*/,
                                              double /*alpha*/) const {
  return nullptr;
}

}  // namespace ccd
