#ifndef CCD_GENERATORS_CONCEPT_H_
#define CCD_GENERATORS_CONCEPT_H_

#include <memory>
#include <vector>

#include "stream/instance.h"
#include "utils/rng.h"

namespace ccd {

/// A fixed joint distribution p(x, y) — one "concept" in the concept-drift
/// sense (Sec. II of the paper). Concept drift is modelled as transitions
/// between Concept objects; class imbalance is imposed on top by sampling
/// the class first and asking the concept for class-conditional features.
class Concept {
 public:
  virtual ~Concept() = default;

  virtual const StreamSchema& schema() const = 0;

  /// Draws one instance from the concept's natural joint distribution.
  virtual Instance Sample(Rng* rng) const = 0;

  /// Draws a feature vector conditioned on class `k`. The default
  /// implementation rejection-samples Sample(); families with an explicit
  /// class-conditional structure (RBF clusters, RandomTree leaves) override
  /// this with an exact, O(1) sampler.
  virtual std::vector<double> SampleForClass(int k, Rng* rng) const;

  /// Returns a new concept that is the parameter-space interpolation
  /// (1-alpha)*this + alpha*target, when the family supports it (Hyperplane
  /// weights, RBF centroids). Returns nullptr otherwise; callers then fall
  /// back to distribution mixing, which realizes the same marginal as
  /// Eq. 3 of the paper.
  virtual std::unique_ptr<Concept> Interpolate(const Concept& target,
                                               double alpha) const;

 protected:
  /// Maximum attempts for the default rejection sampler before giving up
  /// and returning the last draw (keeps the stream total; the mislabeled
  /// instance acts as label noise at a ~K*exp(-200/K) rate).
  static constexpr int kMaxRejectionTries = 256;
};

}  // namespace ccd

#endif  // CCD_GENERATORS_CONCEPT_H_
