#ifndef CCD_GENERATORS_DRIFTING_STREAM_H_
#define CCD_GENERATORS_DRIFTING_STREAM_H_

#include <map>
#include <memory>
#include <vector>

#include "generators/concept.h"
#include "generators/drift.h"
#include "generators/imbalance.h"
#include "stream/stream.h"
#include "utils/rng.h"

namespace ccd {

/// The library's universal drifting-stream composer.
///
/// A stream is a chain of Concepts C_0 -> C_1 -> ... with one DriftEvent per
/// transition, an ImbalanceSchedule giving the class priors π(t), and an
/// optional label-noise rate. Sampling order per instance:
///
///   1. draw class  y ~ π(t)                       (imbalance / class roles)
///   2. resolve which concept(s) currently govern  (global or local drift —
///      classes outside an event's `affected` set simply never advance)
///   3. draw features x | y from the governing concept, mixing or
///      interpolating during a transition window (Eq. 2-5)
///
/// This realizes all three of the paper's scenarios with one mechanism:
/// Scenario 1 = global events + dynamic IR; Scenario 2 adds role switching
/// in the schedule; Scenario 3 restricts `affected` to a class subset.
class DriftingClassStream : public InstanceStream {
 public:
  struct Options {
    double label_noise = 0.0;  ///< Probability of replacing y by random.
    /// Incremental transitions rebuild the interpolated concept every time
    /// alpha moves by this much (cost/fidelity knob).
    double interpolation_step = 0.02;
  };

  /// `concepts.size()` must be `events.size() + 1`; events must be sorted by
  /// start and non-overlapping. All concepts must share one schema.
  DriftingClassStream(std::vector<std::unique_ptr<Concept>> concepts,
                      std::vector<DriftEvent> events,
                      ImbalanceSchedule imbalance, uint64_t seed,
                      Options options);
  DriftingClassStream(std::vector<std::unique_ptr<Concept>> concepts,
                      std::vector<DriftEvent> events,
                      ImbalanceSchedule imbalance, uint64_t seed)
      : DriftingClassStream(std::move(concepts), std::move(events),
                            std::move(imbalance), seed, Options()) {}

  const StreamSchema& schema() const override { return schema_; }
  Instance Next() override;
  uint64_t position() const override { return pos_; }

  const std::vector<DriftEvent>& events() const { return events_; }
  const ImbalanceSchedule& imbalance() const { return imbalance_; }

  /// True ground-truth answer to "is class k inside a drift transition or
  /// within `slack` instances after one at stream position t". Used by the
  /// detection-quality harnesses to score detectors.
  bool ClassDriftActiveAt(uint64_t t, int k, uint64_t slack = 0) const;

 private:
  struct Governing {
    int old_index = 0;
    int new_index = 0;
    double alpha = 1.0;  ///< 1 when no transition pending.
    DriftType type = DriftType::kSudden;
    int event_index = -1;  ///< -1 when fully settled.
  };

  Governing Resolve(uint64_t t, int label) const;
  const Concept* InterpolatedConcept(int event_index, double alpha);

  StreamSchema schema_;
  std::vector<std::unique_ptr<Concept>> concepts_;
  std::vector<DriftEvent> events_;
  ImbalanceSchedule imbalance_;
  Options opt_;
  Rng rng_;
  uint64_t pos_ = 0;

  // Cache of interpolated concepts keyed by (event, quantized alpha).
  std::map<std::pair<int, int>, std::unique_ptr<Concept>> interp_cache_;
};

}  // namespace ccd

#endif  // CCD_GENERATORS_DRIFTING_STREAM_H_
