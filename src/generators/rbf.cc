#include "generators/rbf.h"

#include <algorithm>
#include <cmath>

namespace ccd {

RbfConcept::RbfConcept(const Options& options, uint64_t seed)
    : schema_(options.num_features, options.num_classes, "rbf"),
      opt_(options) {
  Rng rng(seed);
  centroids_.resize(static_cast<size_t>(opt_.num_classes));
  for (auto& cls : centroids_) {
    cls.resize(static_cast<size_t>(opt_.centroids_per_class));
    for (auto& c : cls) {
      c.center.resize(static_cast<size_t>(opt_.num_features));
      for (double& v : c.center) v = rng.NextDouble();
      c.sigma = rng.Uniform(opt_.sigma_min, opt_.sigma_max);
      c.weight = rng.Uniform(0.2, 1.0);
    }
  }
}

std::vector<double> RbfConcept::SampleForClass(int k, Rng* rng) const {
  const auto& cls = centroids_[static_cast<size_t>(k)];
  std::vector<double> weights(cls.size());
  for (size_t i = 0; i < cls.size(); ++i) weights[i] = cls[i].weight;
  const Centroid& c = cls[static_cast<size_t>(rng->Discrete(weights))];
  std::vector<double> x(c.center.size());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(c.center[i] + rng->Gaussian(0.0, c.sigma), 0.0, 1.0);
  }
  return x;
}

Instance RbfConcept::Sample(Rng* rng) const {
  // Natural class distribution: proportional to total centroid weight.
  std::vector<double> class_w(centroids_.size());
  for (size_t k = 0; k < centroids_.size(); ++k) {
    double s = 0.0;
    for (const auto& c : centroids_[k]) s += c.weight;
    class_w[k] = s;
  }
  int k = rng->Discrete(class_w);
  return Instance(SampleForClass(k, rng), k);
}

std::unique_ptr<Concept> RbfConcept::Interpolate(const Concept& target,
                                                 double alpha) const {
  const auto* other = dynamic_cast<const RbfConcept*>(&target);
  if (other == nullptr || other->centroids_.size() != centroids_.size()) {
    return nullptr;
  }
  auto out = std::unique_ptr<RbfConcept>(new RbfConcept());
  out->schema_ = schema_;
  out->opt_ = opt_;
  out->centroids_ = centroids_;
  for (size_t k = 0; k < centroids_.size(); ++k) {
    if (other->centroids_[k].size() != centroids_[k].size()) return nullptr;
    for (size_t i = 0; i < centroids_[k].size(); ++i) {
      auto& dst = out->centroids_[k][i];
      const auto& a = centroids_[k][i];
      const auto& b = other->centroids_[k][i];
      for (size_t dgt = 0; dgt < dst.center.size(); ++dgt) {
        dst.center[dgt] = (1.0 - alpha) * a.center[dgt] + alpha * b.center[dgt];
      }
      dst.sigma = (1.0 - alpha) * a.sigma + alpha * b.sigma;
      dst.weight = (1.0 - alpha) * a.weight + alpha * b.weight;
    }
  }
  return out;
}

}  // namespace ccd
