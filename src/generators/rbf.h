#ifndef CCD_GENERATORS_RBF_H_
#define CCD_GENERATORS_RBF_H_

#include <memory>
#include <vector>

#include "generators/concept.h"

namespace ccd {

/// Radial-basis-function concept (MOA's RandomRBF generalized to
/// class-conditional sampling): each class owns a set of Gaussian centroids
/// in [0,1]^d with per-centroid spread and weight. Class-conditional
/// sampling is exact (pick a centroid of that class, perturb), which keeps
/// extreme imbalance ratios cheap. Supports parameter interpolation
/// (centroid positions/spreads), so incremental drift is genuine concept
/// morphing rather than distribution mixing.
class RbfConcept : public Concept {
 public:
  struct Options {
    int num_features = 10;
    int num_classes = 5;
    int centroids_per_class = 3;
    double sigma_min = 0.03;
    double sigma_max = 0.12;
  };

  /// Randomly places centroids using `seed`. Distinct seeds give distinct
  /// concepts of the same shape (the unit of drift).
  RbfConcept(const Options& options, uint64_t seed);

  const StreamSchema& schema() const override { return schema_; }
  Instance Sample(Rng* rng) const override;
  std::vector<double> SampleForClass(int k, Rng* rng) const override;
  std::unique_ptr<Concept> Interpolate(const Concept& target,
                                       double alpha) const override;

 private:
  struct Centroid {
    std::vector<double> center;
    double sigma;
    double weight;
  };

  RbfConcept() = default;  // For Interpolate.

  StreamSchema schema_;
  Options opt_;
  /// centroids_[k] = centroids of class k.
  std::vector<std::vector<Centroid>> centroids_;
};

}  // namespace ccd

#endif  // CCD_GENERATORS_RBF_H_
