#ifndef CCD_GENERATORS_RANDOM_TREE_H_
#define CCD_GENERATORS_RANDOM_TREE_H_

#include <memory>
#include <vector>

#include "generators/concept.h"

namespace ccd {

/// Random-tree concept (MOA's RandomTreeGenerator): a randomly grown binary
/// decision tree over [0,1]^d defines axis-aligned leaf boxes, each labelled
/// with a class. Unconditional sampling draws x uniformly and reads the leaf
/// label; class-conditional sampling picks a leaf of the class (weighted by
/// box volume) and draws uniformly inside its box — exact and O(depth),
/// which makes extreme-imbalance streams cheap. A fresh seed grows an
/// entirely new tree (sudden drift).
class RandomTreeConcept : public Concept {
 public:
  struct Options {
    int num_features = 10;
    int num_classes = 5;
    int max_depth = 7;
    int min_depth = 3;       ///< No leaves above this depth.
    double leaf_prob = 0.25; ///< Chance to stop splitting past min_depth.
  };

  RandomTreeConcept(const Options& options, uint64_t seed);

  const StreamSchema& schema() const override { return schema_; }
  Instance Sample(Rng* rng) const override;
  std::vector<double> SampleForClass(int k, Rng* rng) const override;

  size_t num_leaves() const { return leaves_.size(); }

 private:
  struct Node {
    int feature = -1;        ///< -1 for leaves.
    double threshold = 0.0;
    int left = -1, right = -1;
    int label = -1;          ///< Valid for leaves.
    int leaf_index = -1;
  };

  struct Leaf {
    std::vector<double> lo, hi;  ///< Axis-aligned bounding box.
    int label = -1;
    double volume = 0.0;
  };

  int Grow(Rng* rng, int depth, std::vector<double> lo, std::vector<double> hi);

  StreamSchema schema_;
  Options opt_;
  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
  /// leaves_by_class_[k] = indices into leaves_ plus volume weights.
  std::vector<std::vector<int>> leaves_by_class_;
};

}  // namespace ccd

#endif  // CCD_GENERATORS_RANDOM_TREE_H_
