#include "generators/drifting_stream.h"

#include <cmath>

namespace ccd {

DriftingClassStream::DriftingClassStream(
    std::vector<std::unique_ptr<Concept>> concepts,
    std::vector<DriftEvent> events, ImbalanceSchedule imbalance, uint64_t seed,
    Options options)
    : concepts_(std::move(concepts)),
      events_(std::move(events)),
      imbalance_(std::move(imbalance)),
      opt_(options),
      rng_(seed) {
  schema_ = concepts_.empty() ? StreamSchema() : concepts_[0]->schema();
}

DriftingClassStream::Governing DriftingClassStream::Resolve(uint64_t t,
                                                            int label) const {
  Governing g;
  g.old_index = 0;
  g.new_index = 0;
  for (size_t e = 0; e < events_.size(); ++e) {
    const DriftEvent& ev = events_[e];
    if (t < ev.start) break;
    if (!ev.Affects(label)) continue;
    double alpha = ev.Alpha(t);
    if (alpha >= 1.0) {
      g.old_index = static_cast<int>(e) + 1;
      g.new_index = g.old_index;
      g.alpha = 1.0;
      g.event_index = -1;
    } else {
      g.new_index = static_cast<int>(e) + 1;
      g.alpha = alpha;
      g.type = ev.type;
      g.event_index = static_cast<int>(e);
      break;  // Events are non-overlapping; nothing later can be active.
    }
  }
  return g;
}

const Concept* DriftingClassStream::InterpolatedConcept(int event_index,
                                                        double alpha) {
  int quant = static_cast<int>(alpha / opt_.interpolation_step);
  auto key = std::make_pair(event_index, quant);
  auto it = interp_cache_.find(key);
  if (it != interp_cache_.end()) return it->second.get();

  // The `old` concept of the event chain; for interpolation purposes the
  // chain transition e -> e+1 is what matters.
  const Concept& from = *concepts_[static_cast<size_t>(event_index)];
  const Concept& to = *concepts_[static_cast<size_t>(event_index) + 1];
  std::unique_ptr<Concept> interp =
      from.Interpolate(to, static_cast<double>(quant) * opt_.interpolation_step);
  if (!interp) return nullptr;
  const Concept* raw = interp.get();
  // Keep the cache bounded: one event contributes at most 1/step entries.
  interp_cache_[key] = std::move(interp);
  return raw;
}

Instance DriftingClassStream::Next() {
  const uint64_t t = pos_++;
  std::vector<double> priors = imbalance_.PriorsAt(t);
  int label = rng_.Discrete(priors);

  Governing g = Resolve(t, label);
  std::vector<double> x;
  if (g.alpha >= 1.0 || g.event_index < 0) {
    x = concepts_[static_cast<size_t>(g.new_index)]->SampleForClass(label, &rng_);
  } else if (g.type == DriftType::kIncremental) {
    const Concept* interp = InterpolatedConcept(g.event_index, g.alpha);
    if (interp != nullptr) {
      x = interp->SampleForClass(label, &rng_);
    } else {
      // Family cannot interpolate: fall back to the Eq. 3 mixture, whose
      // marginal matches the incremental definition.
      const Concept& c = rng_.Bernoulli(g.alpha)
                             ? *concepts_[static_cast<size_t>(g.new_index)]
                             : *concepts_[static_cast<size_t>(g.old_index)];
      x = c.SampleForClass(label, &rng_);
    }
  } else {
    // Sudden never reaches here (alpha jumps to 1); gradual = Eq. 5.
    const Concept& c = rng_.Bernoulli(g.alpha)
                           ? *concepts_[static_cast<size_t>(g.new_index)]
                           : *concepts_[static_cast<size_t>(g.old_index)];
    x = c.SampleForClass(label, &rng_);
  }

  int emitted_label = label;
  if (opt_.label_noise > 0.0 && rng_.Bernoulli(opt_.label_noise)) {
    emitted_label = rng_.UniformInt(0, schema_.num_classes - 1);
  }
  return Instance(std::move(x), emitted_label);
}

bool DriftingClassStream::ClassDriftActiveAt(uint64_t t, int k,
                                             uint64_t slack) const {
  for (const DriftEvent& ev : events_) {
    if (!ev.Affects(k)) continue;
    uint64_t end = ev.start + (ev.width == 0 ? 1 : ev.width) + slack;
    if (t >= ev.start && t < end) return true;
  }
  return false;
}

}  // namespace ccd
