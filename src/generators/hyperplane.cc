#include "generators/hyperplane.h"

#include <algorithm>

namespace ccd {

HyperplaneConcept::HyperplaneConcept(const Options& options, uint64_t seed)
    : schema_(options.num_features, options.num_classes, "hyperplane"),
      opt_(options) {
  Rng rng(seed);
  w_.resize(static_cast<size_t>(opt_.num_features));
  for (double& v : w_) v = rng.Uniform(-1.0, 1.0);
  ComputeThresholds(seed ^ 0x9e3779b97f4a7c15ULL);
}

void HyperplaneConcept::ComputeThresholds(uint64_t probe_seed) {
  Rng rng(probe_seed);
  std::vector<double> scores(static_cast<size_t>(opt_.probe_samples));
  std::vector<double> x(w_.size());
  for (double& s : scores) {
    double acc = 0.0;
    for (size_t i = 0; i < w_.size(); ++i) acc += w_[i] * rng.NextDouble();
    s = acc;
  }
  std::sort(scores.begin(), scores.end());
  thresholds_.clear();
  for (int k = 1; k < opt_.num_classes; ++k) {
    size_t idx = static_cast<size_t>(
        static_cast<double>(k) / opt_.num_classes * scores.size());
    if (idx >= scores.size()) idx = scores.size() - 1;
    thresholds_.push_back(scores[idx]);
  }
}

int HyperplaneConcept::Classify(double score) const {
  int k = 0;
  while (k < static_cast<int>(thresholds_.size()) &&
         score >= thresholds_[static_cast<size_t>(k)]) {
    ++k;
  }
  return k;
}

Instance HyperplaneConcept::Sample(Rng* rng) const {
  std::vector<double> x(w_.size());
  double score = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng->NextDouble();
    score += w_[i] * x[i];
  }
  if (opt_.score_noise > 0.0) score += rng->Gaussian(0.0, opt_.score_noise);
  return Instance(std::move(x), Classify(score));
}

std::unique_ptr<Concept> HyperplaneConcept::Interpolate(const Concept& target,
                                                        double alpha) const {
  const auto* other = dynamic_cast<const HyperplaneConcept*>(&target);
  if (other == nullptr || other->w_.size() != w_.size()) return nullptr;
  auto out = std::unique_ptr<HyperplaneConcept>(new HyperplaneConcept());
  out->schema_ = schema_;
  out->opt_ = opt_;
  out->w_.resize(w_.size());
  for (size_t i = 0; i < w_.size(); ++i) {
    out->w_[i] = (1.0 - alpha) * w_[i] + alpha * other->w_[i];
  }
  // Threshold estimation must track the morphing weights so bands keep
  // roughly equal natural mass.
  out->ComputeThresholds(0xabcdef12u + static_cast<uint64_t>(alpha * 1000));
  return out;
}

}  // namespace ccd
