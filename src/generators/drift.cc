#include "generators/drift.h"

namespace ccd {

const char* DriftTypeName(DriftType t) {
  switch (t) {
    case DriftType::kSudden:
      return "sudden";
    case DriftType::kGradual:
      return "gradual";
    case DriftType::kIncremental:
      return "incremental";
  }
  return "?";
}

std::vector<DriftEvent> EvenlySpacedEvents(uint64_t length, int n_events,
                                           DriftType type, uint64_t width) {
  std::vector<DriftEvent> events;
  if (n_events <= 0 || length == 0) return events;
  uint64_t gap = length / static_cast<uint64_t>(n_events + 1);
  if (gap == 0) gap = 1;
  uint64_t w = type == DriftType::kSudden ? 0 : width;
  if (w > gap / 2) w = gap / 2;
  for (int i = 1; i <= n_events; ++i) {
    DriftEvent e;
    e.start = gap * static_cast<uint64_t>(i);
    e.width = w;
    e.type = type;
    events.push_back(e);
  }
  return events;
}

}  // namespace ccd
