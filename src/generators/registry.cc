#include "generators/registry.h"

#include <algorithm>

#include "generators/agrawal.h"
#include "generators/hyperplane.h"
#include "generators/random_tree.h"
#include "generators/rbf.h"

namespace ccd {
namespace {

StreamSpec Artificial(const std::string& name, uint64_t n, int d, int k,
                      double ir, DriftType type) {
  StreamSpec s;
  s.name = name;
  s.full_length = n;
  s.num_features = d;
  s.num_classes = k;
  s.imbalance_ratio = ir;
  s.drift_type = type;
  s.drift_events = 3;
  s.real_world = false;
  return s;
}

StreamSpec RealWorld(const std::string& name, uint64_t n, int d, int k,
                     double ir, bool known_drift) {
  StreamSpec s;
  s.name = name;
  s.full_length = n;
  s.num_features = d;
  s.num_classes = k;
  s.imbalance_ratio = ir;
  // Real streams have no labelled drift type; the substitutes use gradual
  // transitions (the least structured choice), more of them when the
  // paper marks the stream as drifting.
  s.drift_type = DriftType::kGradual;
  s.drift_events = known_drift ? 3 : 1;
  s.real_world = true;
  return s;
}

std::vector<StreamSpec> MakeAllSpecs() {
  std::vector<StreamSpec> v;
  // Table I, top block: real-world streams (simulated substitutes).
  v.push_back(RealWorld("Activity-Raw", 1048570, 3, 6, 128.93, true));
  v.push_back(RealWorld("Connect4", 67557, 42, 3, 45.81, false));
  v.push_back(RealWorld("Covertype", 581012, 54, 7, 96.14, false));
  v.push_back(RealWorld("Crimes", 878049, 3, 39, 106.72, false));
  v.push_back(RealWorld("DJ30", 138166, 8, 30, 204.66, true));
  v.push_back(RealWorld("EEG", 14980, 14, 2, 29.88, true));
  v.push_back(RealWorld("Electricity", 45312, 8, 2, 17.54, true));
  v.push_back(RealWorld("Gas", 13910, 128, 6, 138.03, true));
  v.push_back(RealWorld("Olympic", 271116, 7, 4, 66.82, false));
  v.push_back(RealWorld("Poker", 829201, 10, 10, 144.00, true));
  v.push_back(RealWorld("IntelSensors", 2219804, 5, 57, 348.26, true));
  v.push_back(RealWorld("Tags", 164860, 4, 11, 194.28, false));
  // Table I, bottom block: artificial streams.
  v.push_back(Artificial("Aggrawal5", 1000000, 20, 5, 50.0,
                         DriftType::kIncremental));
  v.push_back(Artificial("Aggrawal10", 1000000, 40, 10, 80.0,
                         DriftType::kIncremental));
  v.push_back(Artificial("Aggrawal20", 2000000, 80, 20, 100.0,
                         DriftType::kIncremental));
  v.push_back(
      Artificial("Hyperplane5", 1000000, 20, 5, 100.0, DriftType::kGradual));
  v.push_back(
      Artificial("Hyperplane10", 1000000, 40, 10, 200.0, DriftType::kGradual));
  v.push_back(
      Artificial("Hyperplane20", 2000000, 80, 20, 300.0, DriftType::kGradual));
  v.push_back(Artificial("RBF5", 1000000, 20, 5, 100.0, DriftType::kSudden));
  v.push_back(Artificial("RBF10", 1000000, 40, 10, 200.0, DriftType::kSudden));
  v.push_back(Artificial("RBF20", 2000000, 80, 20, 300.0, DriftType::kSudden));
  v.push_back(
      Artificial("RandomTree5", 1000000, 20, 5, 100.0, DriftType::kSudden));
  v.push_back(
      Artificial("RandomTree10", 1000000, 40, 10, 200.0, DriftType::kSudden));
  v.push_back(
      Artificial("RandomTree20", 2000000, 80, 20, 300.0, DriftType::kSudden));
  return v;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::unique_ptr<Concept> MakeConcept(const StreamSpec& spec, int variant,
                                     uint64_t seed) {
  uint64_t concept_seed = seed * 1000003ULL + static_cast<uint64_t>(variant);
  if (StartsWith(spec.name, "Aggrawal")) {
    AgrawalConcept::Options o;
    o.num_features = spec.num_features;
    o.num_classes = spec.num_classes;
    o.function_id = variant;
    return std::make_unique<AgrawalConcept>(o, concept_seed);
  }
  if (StartsWith(spec.name, "Hyperplane")) {
    HyperplaneConcept::Options o;
    o.num_features = spec.num_features;
    o.num_classes = spec.num_classes;
    return std::make_unique<HyperplaneConcept>(o, concept_seed);
  }
  if (StartsWith(spec.name, "RandomTree")) {
    RandomTreeConcept::Options o;
    o.num_features = spec.num_features;
    o.num_classes = spec.num_classes;
    // Deep enough to host 20 distinct classes in leaves.
    o.max_depth = std::max(7, 3 + spec.num_classes / 3);
    return std::make_unique<RandomTreeConcept>(o, concept_seed);
  }
  // RBF* and every real-world substitute: mixture-of-Gaussians concepts.
  RbfConcept::Options o;
  o.num_features = spec.num_features;
  o.num_classes = spec.num_classes;
  o.centroids_per_class = spec.real_world ? 4 : 3;
  return std::make_unique<RbfConcept>(o, concept_seed);
}

}  // namespace

const std::vector<StreamSpec>& AllStreamSpecs() {
  static const std::vector<StreamSpec>* specs =
      new std::vector<StreamSpec>(MakeAllSpecs());
  return *specs;
}

std::vector<StreamSpec> ArtificialStreamSpecs() {
  std::vector<StreamSpec> out;
  for (const StreamSpec& s : AllStreamSpecs()) {
    if (!s.real_world) out.push_back(s);
  }
  return out;
}

const StreamSpec* FindStreamSpec(const std::string& name) {
  for (const StreamSpec& s : AllStreamSpecs()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

BuiltStream BuildStream(const StreamSpec& spec, const BuildOptions& options) {
  BuiltStream out;
  out.spec = spec;
  uint64_t length = static_cast<uint64_t>(
      static_cast<double>(spec.full_length) * options.scale);
  out.length = std::max<uint64_t>(length, 4000);

  int n_events =
      options.events_override >= 0 ? options.events_override : spec.drift_events;

  std::vector<std::unique_ptr<Concept>> concepts;
  for (int i = 0; i <= n_events; ++i) {
    concepts.push_back(MakeConcept(spec, i, options.seed));
  }

  uint64_t width = out.length / 10;
  std::vector<DriftEvent> events =
      EvenlySpacedEvents(out.length, n_events, spec.drift_type, width);

  // Experiment 2: restrict drift to the c smallest classes. With the
  // geometric prior ladder and no role switching, class K-1 is the
  // smallest, K-2 the next, etc.
  if (options.local_drift_classes >= 0) {
    std::vector<int> affected;
    int c = std::min(options.local_drift_classes, spec.num_classes);
    for (int i = 0; i < c; ++i) {
      affected.push_back(spec.num_classes - 1 - i);
    }
    for (DriftEvent& e : events) e.affected = affected;
  }

  double ir =
      options.ir_override > 0.0 ? options.ir_override : spec.imbalance_ratio;
  ImbalanceSchedule::Options imb;
  imb.num_classes = spec.num_classes;
  imb.base_ir = ir;
  imb.dynamic = true;  // Paper: artificial IR "increases and decreases".
  imb.ir_low = std::max(1.0, ir / 2.0);
  imb.ir_high = ir;
  imb.ir_period = std::max<uint64_t>(out.length / 2, 2);
  if (options.role_switching) {
    imb.role_switch_period = std::max<uint64_t>(out.length / 4, 2);
    imb.role_switch_width = std::max<uint64_t>(out.length / 100, 2);
  }

  DriftingClassStream::Options stream_opt;
  stream_opt.label_noise = options.label_noise;

  out.stream = std::make_unique<DriftingClassStream>(
      std::move(concepts), std::move(events), ImbalanceSchedule(imb),
      options.seed ^ 0x5bd1e995u, stream_opt);
  return out;
}

}  // namespace ccd
