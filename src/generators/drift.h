#ifndef CCD_GENERATORS_DRIFT_H_
#define CCD_GENERATORS_DRIFT_H_

#include <cstdint>
#include <vector>

namespace ccd {

/// Speed profile of a concept transition (Sec. II, Eq. 2-5).
enum class DriftType {
  kSudden,       ///< Eq. 2: abrupt switch at t1.
  kGradual,      ///< Eq. 5: instances oscillate between D0 and D1.
  kIncremental,  ///< Eq. 3: progression through intermediate concepts.
};

const char* DriftTypeName(DriftType t);

/// One drift event: the transition from concept index e to e+1 in a
/// DriftingClassStream, starting at instance `start` and lasting `width`
/// instances (0 for sudden). `affected` lists the class labels subject to
/// the drift; empty means *global* drift (all classes). Local drift
/// (Scenario 3 / Experiment 2 of the paper) is expressed by listing a
/// subset.
struct DriftEvent {
  uint64_t start = 0;
  uint64_t width = 0;
  DriftType type = DriftType::kSudden;
  std::vector<int> affected;

  /// Progress of the transition in [0,1] at stream position `t` (Eq. 4).
  double Alpha(uint64_t t) const {
    if (t < start) return 0.0;
    if (width == 0 || t >= start + width) return 1.0;
    return static_cast<double>(t - start) / static_cast<double>(width);
  }

  bool Affects(int label) const {
    if (affected.empty()) return true;
    for (int a : affected) {
      if (a == label) return true;
    }
    return false;
  }
};

/// Builds `n_events` evenly spaced events over a stream of `length`
/// instances, each of the given type and `width` (clamped to the gaps).
std::vector<DriftEvent> EvenlySpacedEvents(uint64_t length, int n_events,
                                           DriftType type, uint64_t width);

}  // namespace ccd

#endif  // CCD_GENERATORS_DRIFT_H_
