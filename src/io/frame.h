#ifndef CCD_IO_FRAME_H_
#define CCD_IO_FRAME_H_

#include <string>

namespace ccd {
namespace io {

/// Length-prefixed framing over a byte-stream file descriptor (a
/// connected socket or a pipe): every frame is [u32 length,
/// little-endian][payload]. The same kMaxLengthPrefix cap as the wire
/// format bounds a frame, so a hostile or corrupted peer cannot make the
/// reader allocate unbounded memory.
///
/// Both directions loop over partial transfers and EINTR; WriteFrame
/// additionally suppresses SIGPIPE (MSG_NOSIGNAL), so a peer that hangs
/// up mid-write surfaces as a WireError instead of killing the process.

/// Reads one complete frame into `payload`. Returns false on clean EOF
/// *at a frame boundary* (the peer closed after a whole frame); EOF
/// mid-frame, an oversized length prefix, or a read error throw
/// WireError.
bool ReadFrame(int fd, std::string* payload);

/// Writes one complete frame. Throws WireError on an oversized payload
/// or a write/connection error.
void WriteFrame(int fd, const std::string& payload);

}  // namespace io
}  // namespace ccd

#endif  // CCD_IO_FRAME_H_
