#include "io/codecs.h"

namespace ccd {
namespace io {

void WriteSchema(Writer& w, const StreamSchema& schema) {
  w.BeginSection("schema");
  w.I64(schema.num_features);
  w.I64(schema.num_classes);
  w.String(schema.name);
  w.EndSection();
}

StreamSchema ReadSchema(Reader& r) {
  r.BeginSection("schema");
  StreamSchema schema;
  int64_t features = r.I64("schema.num_features");
  int64_t classes = r.I64("schema.num_classes");
  if (features <= 0 || features > 1'000'000) {
    r.Fail("schema.num_features", "implausible feature count " +
                                      std::to_string(features));
  }
  if (classes <= 0 || classes > 1'000'000) {
    r.Fail("schema.num_classes",
           "implausible class count " + std::to_string(classes));
  }
  schema.num_features = static_cast<int>(features);
  schema.num_classes = static_cast<int>(classes);
  schema.name = r.String("schema.name");
  r.EndSection("schema");
  return schema;
}

void WriteInstance(Writer& w, const Instance& x) {
  w.F64Array(x.features);
  w.I64(x.label);
  w.F64(x.weight);
}

Instance ReadInstance(Reader& r) {
  Instance x;
  x.features = r.F64Array("instance.features");
  x.label = static_cast<int>(r.I64("instance.label"));
  x.weight = r.F64("instance.weight");
  return x;
}

void WriteDetectorState(Writer& w, DetectorState s) {
  w.U8(static_cast<uint8_t>(s));
}

DetectorState ReadDetectorState(Reader& r, const char* field) {
  uint8_t v = r.U8(field);
  if (v > static_cast<uint8_t>(DetectorState::kDrift)) {
    r.Fail(field, "invalid DetectorState value " + std::to_string(v));
  }
  return static_cast<DetectorState>(v);
}

void WriteWelford(Writer& w, const Welford& s) {
  w.U64(s.count());
  w.F64(s.mean());
  w.F64(s.m2());
}

Welford ReadWelford(Reader& r) {
  uint64_t n = r.U64("welford.n");
  double mean = r.F64("welford.mean");
  double m2 = r.F64("welford.m2");
  Welford out;
  out.RestoreState(n, mean, m2);
  return out;
}

void WriteRng(Writer& w, const Rng& rng) {
  Rng::State s = rng.SaveState();
  w.U64(s.state);
  w.U64(s.inc);
  w.Bool(s.has_gauss);
  w.F64(s.cached_gauss);
}

void ReadRngInto(Reader& r, Rng* rng) {
  Rng::State s;
  s.state = r.U64("rng.state");
  s.inc = r.U64("rng.inc");
  s.has_gauss = r.Bool("rng.has_gauss");
  s.cached_gauss = r.F64("rng.cached_gauss");
  rng->RestoreState(s);
}

void WriteTrend(Writer& w, const SlidingTrend& t) {
  w.U64(t.window());
  w.U64(t.time());
  w.U32(static_cast<uint32_t>(t.points().size()));
  for (const SlidingTrend::Point& p : t.points()) {
    w.U64(p.t);
    w.F64(p.r);
  }
  w.F64(t.sum_tr());
  w.F64(t.sum_t());
  w.F64(t.sum_r());
  w.F64(t.sum_t2());
}

void ReadTrendInto(Reader& r, SlidingTrend* t) {
  uint64_t window = r.U64("trend.window");
  uint64_t time = r.U64("trend.time");
  uint32_t count = r.Count("trend.points");
  std::deque<SlidingTrend::Point> points;
  for (uint32_t i = 0; i < count; ++i) {
    SlidingTrend::Point p;
    p.t = r.U64("trend.point.t");
    p.r = r.F64("trend.point.r");
    points.push_back(p);
  }
  double sum_tr = r.F64("trend.sum_tr");
  double sum_t = r.F64("trend.sum_t");
  double sum_r = r.F64("trend.sum_r");
  double sum_t2 = r.F64("trend.sum_t2");
  t->RestoreState(static_cast<size_t>(window), time, std::move(points), sum_tr,
                  sum_t, sum_r, sum_t2);
}

void WriteNormalizer(Writer& w, const MinMaxNormalizer& n) {
  w.F64Array(n.lower());
  w.F64Array(n.upper());
  w.Bool(n.seen());
}

void ReadNormalizerInto(Reader& r, MinMaxNormalizer* n) {
  std::vector<double> lo = r.F64Array("normalizer.lower");
  std::vector<double> hi = r.F64Array("normalizer.upper");
  bool seen = r.Bool("normalizer.seen");
  if (lo.size() != n->lower().size() || hi.size() != lo.size()) {
    r.Fail("normalizer.lower",
           "bound width " + std::to_string(lo.size()) +
               " does not match normalizer width " +
               std::to_string(n->lower().size()));
  }
  n->RestoreState(std::move(lo), std::move(hi), seen);
}

void WriteF64Deque(Writer& w, const std::deque<double>& v) {
  w.F64Array(std::vector<double>(v.begin(), v.end()));
}

std::deque<double> ReadF64Deque(Reader& r, const char* field) {
  std::vector<double> v = r.F64Array(field);
  return std::deque<double>(v.begin(), v.end());
}

void WriteBoolDeque(Writer& w, const std::deque<bool>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (bool b : v) w.U8(b ? 1 : 0);
}

std::deque<bool> ReadBoolDeque(Reader& r, const char* field) {
  uint32_t n = r.Count(field);
  std::deque<bool> out;
  for (uint32_t i = 0; i < n; ++i) out.push_back(r.U8(field) != 0);
  return out;
}

void WriteBoolVector(Writer& w, const std::vector<bool>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (bool b : v) w.U8(b ? 1 : 0);
}

std::vector<bool> ReadBoolVector(Reader& r, const char* field) {
  uint32_t n = r.Count(field);
  std::vector<bool> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.push_back(r.U8(field) != 0);
  return out;
}

void WriteI64Vector(Writer& w, const std::vector<long long>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (long long x : v) w.I64(x);
}

std::vector<long long> ReadI64Vector(Reader& r, const char* field) {
  uint32_t n = r.Count(field);
  std::vector<long long> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.push_back(r.I64(field));
  return out;
}

void WriteIntVector(Writer& w, const std::vector<int>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (int x : v) w.I64(x);
}

std::vector<int> ReadIntVector(Reader& r, const char* field) {
  uint32_t n = r.Count(field);
  std::vector<int> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.push_back(static_cast<int>(r.I64(field)));
  return out;
}

}  // namespace io
}  // namespace ccd
