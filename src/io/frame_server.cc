#include "io/frame_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "io/frame.h"
#include "io/wire.h"

namespace ccd {
namespace io {

namespace {

int MakeUnixSocket(const std::string& path) {
  sockaddr_un addr;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw WireError(path, 0,
                    "unix socket path must be 1.." +
                        std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw WireError(path, 0, "socket() failed: " + ErrnoText(errno));
  }
  return fd;
}

void FillAddr(sockaddr_un* addr, const std::string& path) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
}

}  // namespace

FrameServer::FrameServer(std::string socket_path, Handler handler,
                         runtime::ThreadPool* pool)
    : path_(std::move(socket_path)), handler_(std::move(handler)) {
  if (pool == nullptr) {
    owned_pool_ = std::make_unique<runtime::ThreadPool>(4);
    pool_ = owned_pool_.get();
  } else {
    pool_ = pool;
  }
  listen_fd_ = MakeUnixSocket(path_);
  // A stale socket file from a crashed predecessor must not block the
  // restart path this subsystem exists for.
  ::unlink(path_.c_str());
  sockaddr_un addr;
  FillAddr(&addr, path_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int saved = errno;
    ::close(listen_fd_);
    throw WireError(path_, 0, "bind() failed: " + ErrnoText(saved));
  }
  if (::listen(listen_fd_, 64) != 0) {
    int saved = errno;
    ::close(listen_fd_);
    ::unlink(path_.c_str());
    throw WireError(path_, 0, "listen() failed: " + ErrnoText(saved));
  }
  accept_thread_ = std::make_unique<std::thread>([this] { AcceptLoop(); });
}

FrameServer::~FrameServer() { Stop(); }

void FrameServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // shutdown(listen_fd_) from Stop() lands here.
      return;
    }
    if (!TrackConnection(fd)) {
      ::close(fd);
      return;
    }
    pool_->Submit([this, fd] { Serve(fd); });
  }
}

bool FrameServer::TrackConnection(int fd) {
  runtime::MutexLock lock(&mutex_);
  if (stopping_.load()) return false;
  connections_.push_back(fd);
  return true;
}

void FrameServer::UntrackConnection(int fd) {
  runtime::MutexLock lock(&mutex_);
  for (size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i] == fd) {
      connections_.erase(connections_.begin() + static_cast<long>(i));
      break;
    }
  }
}

void FrameServer::Serve(int fd) {
  try {
    std::string request;
    while (ReadFrame(fd, &request)) {
      WriteFrame(fd, handler_(request));
    }
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Deliberately swallowed: a torn frame, hung-up peer, or throwing
    // handler ends *this* connection; the server keeps accepting.
  }
  UntrackConnection(fd);
  ::close(fd);
}

void FrameServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_ && accept_thread_->joinable()) accept_thread_->join();
    return;
  }
  // Wake the listener and every blocked connection read; the fds are
  // closed by their owners (AcceptLoop / Serve) once they observe EOF.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    runtime::MutexLock lock(&mutex_);
    for (int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_ && accept_thread_->joinable()) accept_thread_->join();
  pool_->Wait();  // Every Serve() task has untracked + closed its fd.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(path_.c_str());
}

FrameClient::FrameClient(const std::string& socket_path) {
  fd_ = MakeUnixSocket(socket_path);
  sockaddr_un addr;
  FillAddr(&addr, socket_path);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw WireError(socket_path, 0, "connect() failed: " + ErrnoText(saved));
  }
}

FrameClient::~FrameClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string FrameClient::Call(const std::string& request) {
  WriteFrame(fd_, request);
  std::string response;
  if (!ReadFrame(fd_, &response)) {
    throw WireError("frame.response", 0, "server closed the connection");
  }
  return response;
}

}  // namespace io
}  // namespace ccd
