#include "io/frame.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/wire.h"

namespace ccd {
namespace io {

namespace {

/// Reads exactly `size` bytes. Returns false on EOF before the first
/// byte (clean close); throws on EOF after a partial read or on error.
bool ReadExact(int fd, char* data, size_t size, const char* what) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(what, done, "frame read failed: " + ErrnoText(errno));
    }
    if (n == 0) {
      if (done == 0) return false;
      throw WireError(what, done,
                      "peer closed mid-frame (" + std::to_string(done) +
                          " of " + std::to_string(size) + " bytes)");
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

void SendAll(int fd, const char* data, size_t size, const char* what) {
  size_t done = 0;
  while (done < size) {
    // send() for MSG_NOSIGNAL; fall back to write() for non-socket fds
    // (pipes in tests), which report ENOTSOCK.
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data + done, size - done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(what, done, "frame write failed: " + ErrnoText(errno));
    }
    done += static_cast<size_t>(n);
  }
}

}  // namespace

bool ReadFrame(int fd, std::string* payload) {
  unsigned char prefix[4];
  if (!ReadExact(fd, reinterpret_cast<char*>(prefix), 4, "frame.length")) {
    return false;
  }
  const uint32_t length = static_cast<uint32_t>(prefix[0]) |
                          static_cast<uint32_t>(prefix[1]) << 8 |
                          static_cast<uint32_t>(prefix[2]) << 16 |
                          static_cast<uint32_t>(prefix[3]) << 24;
  if (length > kMaxLengthPrefix) {
    throw WireError("frame.length", 0,
                    "oversized frame (" + std::to_string(length) +
                        " bytes, cap " + std::to_string(kMaxLengthPrefix) +
                        ")");
  }
  payload->resize(length);
  if (length > 0 &&
      !ReadExact(fd, &(*payload)[0], length, "frame.payload")) {
    throw WireError("frame.payload", 0, "peer closed between length and body");
  }
  return true;
}

void WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxLengthPrefix) {
    throw WireError("frame.length", 0,
                    "refusing to send oversized frame (" +
                        std::to_string(payload.size()) + " bytes)");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(length & 0xFF),
                    static_cast<char>((length >> 8) & 0xFF),
                    static_cast<char>((length >> 16) & 0xFF),
                    static_cast<char>((length >> 24) & 0xFF)};
  SendAll(fd, prefix, 4, "frame.length");
  SendAll(fd, payload.data(), payload.size(), "frame.payload");
}

}  // namespace io
}  // namespace ccd
