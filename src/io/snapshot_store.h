#ifndef CCD_IO_SNAPSHOT_STORE_H_
#define CCD_IO_SNAPSHOT_STORE_H_

#include <string>
#include <vector>

namespace ccd {
namespace io {

/// Crash-safe blob store over one directory: every Write() is atomic
/// (write to a hidden temp file, fsync it, rename() over the final name,
/// fsync the directory), so a reader never observes a half-written file —
/// after a crash at *any* point a name either holds its complete old
/// contents or its complete new contents. Content integrity (CRC,
/// version) is the layer above: callers store envelope-sealed bytes
/// (io::SealEnvelope) and validate on read.
///
/// All failure modes — unwritable directory, missing file, short read,
/// failed rename — throw io::WireError naming the file, so persistence
/// errors flow through the same typed-error channel as wire corruption.
class SnapshotStore {
 public:
  /// Opens (and creates, mode 0755, one level) `directory`. Throws
  /// WireError when the path exists but is not a directory, or cannot be
  /// created.
  explicit SnapshotStore(std::string directory);

  /// Atomically replaces `name` with `bytes` (tmp + fsync + rename +
  /// directory fsync). `name` must be a bare file name, no separators.
  void Write(const std::string& name, const std::string& bytes);

  /// Full contents of `name`. Throws WireError when absent or unreadable.
  std::string Read(const std::string& name) const;

  bool Exists(const std::string& name) const;

  /// Removes `name` if present (absence is not an error — cleanup of a
  /// superseded generation must be idempotent), then fsyncs the directory
  /// so the unlink is durable. Throws WireError on a real unlink failure.
  void Remove(const std::string& name);

  /// All regular-file names in the directory, sorted.
  std::vector<std::string> List() const;

  /// Absolute-ish path of `name` inside the store (for diagnostics).
  std::string Path(const std::string& name) const;

  const std::string& directory() const { return dir_; }

 private:
  /// Validates a bare name (non-empty, no '/', not "." / "..").
  void CheckName(const std::string& name) const;
  /// fsync() on the directory fd, so renames/unlinks are durable.
  void SyncDir() const;

  std::string dir_;
};

}  // namespace io
}  // namespace ccd

#endif  // CCD_IO_SNAPSHOT_STORE_H_
