#ifndef CCD_IO_STATE_CODEC_H_
#define CCD_IO_STATE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/engine.h"
#include "eval/prequential.h"
#include "eval/sharded.h"
#include "io/wire.h"

namespace ccd {
namespace io {

/// Codecs for the evaluation-layer aggregates: the run state of a
/// MonitorEngine (EngineSnapshot), its protocol (PrequentialConfig), and
/// the complete durable form of one monitoring shard (StateImage). These
/// sit one layer above io/codecs.h — they may depend on eval/ and on the
/// api component registries, which the per-component codecs must not.

void WriteConfig(Writer& w, const PrequentialConfig& config);
PrequentialConfig ReadConfig(Reader& r);

/// Exact inverse pair: ReadSnapshot(WriteSnapshot(s)) == s field for
/// field, bit for bit (doubles travel as IEEE-754 bit patterns).
/// Structural validation (window within the configured bound, pending ids
/// ascending, ...) stays where it always was — MonitorEngine::Restore();
/// the codec only enforces wire-format integrity.
void WriteSnapshot(Writer& w, const EngineSnapshot& snapshot);
EngineSnapshot ReadSnapshot(Reader& r);

/// The complete durable form of one monitoring shard: the registry
/// identity needed to rebuild its components from nothing (names +
/// canonical `key=value` params + seed), the evaluation protocol, and the
/// full run state (EngineState = engine snapshot + live components).
///
/// Move-only, like the EngineState it carries.
struct StateImage {
  StreamSchema schema;
  std::string classifier;         ///< Registry name, e.g. "cs-ptree".
  std::string classifier_params;  ///< ParamMap::ToString() canonical form.
  std::string detector;           ///< Registry name; empty = no detector.
  std::string detector_params;
  uint64_t seed = 0;
  PrequentialConfig config;
  EngineState state;
};

/// Serializes `image` into a sealed envelope (magic, format version,
/// CRC-32 trailer — see io/wire.h). The component payloads are written by
/// the components themselves (SaveState()), each wrapped in a section
/// named by its name() so bytes of the wrong component fail typed.
/// Throws std::logic_error when a component does not implement
/// SaveState(), naming it.
std::string EncodeStateImage(const StateImage& image);

/// Parses a sealed envelope back into a StateImage: validates magic,
/// version and CRC, reads the identity and run state, reconstructs the
/// components through the api registries (an unknown registry name
/// surfaces as WireError, not ApiError) and restores their learned state
/// via LoadState(). Every malformed input path throws WireError.
StateImage DecodeStateImage(const std::string& bytes);

/// File name of a persisted monitor's manifest inside its directory. The
/// manifest is renamed into place *after* every shard file of its
/// generation is durable, so its presence is the commit point: a crash
/// mid-persist leaves either the complete previous generation or the
/// complete new one, never a mix.
extern const char kManifestName[];

/// Directory manifest of a persisted api::ShardedMonitor: the fleet
/// identity (everything the builder was told) plus one entry per shard
/// file with its expected size and CRC-32, so a reopened monitor detects
/// a swapped or truncated shard file before decoding a byte of it.
struct Manifest {
  struct ShardFile {
    std::string file;
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  StreamSchema schema;
  std::string classifier;
  std::string classifier_params;
  std::string detector;  ///< Empty = no detector.
  std::string detector_params;
  uint64_t seed = 0;
  PrequentialConfig config;
  uint64_t pending_capacity = 0;
  uint8_t mode = 0;  ///< runtime::RoutingMode as its integer value.
  uint64_t merge_every = 0;
  uint64_t completed_total = 0;
  uint64_t generation = 0;
  std::vector<ShardFile> shards;
};

/// Envelope-sealed manifest bytes (same magic/version/CRC framing as
/// state images).
std::string EncodeManifest(const Manifest& manifest);

/// Parses and validates manifest bytes; throws WireError on corruption,
/// an empty shard list, or an out-of-range routing mode.
Manifest DecodeManifest(const std::string& bytes);

}  // namespace io
}  // namespace ccd

#endif  // CCD_IO_STATE_CODEC_H_
