#ifndef CCD_IO_SCHEMA_CHECK_H_
#define CCD_IO_SCHEMA_CHECK_H_

#include <map>
#include <string>
#include <vector>

namespace ccd {
namespace io {

/// Conformance check of sealed state blobs against the audited wire
/// grammars in tools/wire_schema.json (generated and kept fresh by
/// tools/state_audit.py; the static-analysis CI job fails on drift).
///
/// The manifest records, per serialized class, a regex over a one-
/// character-per-wire-tag alphabet (b=u8 u=u32 q=u64 i=i64 d=f64 o=bool
/// s=string y=bytes a=f64-array, parentheses = nested section). The
/// checker walks a blob's raw tag stream — independently of the typed
/// decoders — renders every section's body into that alphabet and
/// matches the sections whose names the manifest knows. A decoder bug,
/// a hand-edited image, or a stale manifest all surface as a mismatch
/// that plain CRC checks cannot see.

struct SchemaCheckReport {
  /// Sections that were found in the blob and matched their pattern.
  int sections_matched = 0;
  /// Mismatches and structural failures, empty when conformant.
  std::vector<std::string> errors;
  /// Conformant AND at least one audited section was present — a blob
  /// with zero recognizable sections never vacuously passes.
  bool ok() const { return errors.empty() && sections_matched > 0; }
};

/// Parses the wire_schema.json text into {section name -> tag pattern}.
/// Only the fields the checker needs are read; unknown keys are skipped.
/// Throws std::runtime_error on malformed JSON or a missing "classes"
/// object, so a truncated or hand-mangled manifest fails loudly instead
/// of silently checking nothing.
std::map<std::string, std::string> ParseWireSchema(
    const std::string& json_text);

/// Checks one sealed state blob (magic + version + payload + CRC, as
/// produced by SealEnvelope / EncodeStateImage) against the schema map.
/// Every section in the blob whose name appears in `schema` must match
/// its pattern; unknown sections are traversed but not judged.
SchemaCheckReport CheckStateSchema(
    const std::string& sealed_bytes,
    const std::map<std::string, std::string>& schema);

}  // namespace io
}  // namespace ccd

#endif  // CCD_IO_SCHEMA_CHECK_H_
