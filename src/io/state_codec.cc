#include "io/state_codec.h"

#include <utility>

#include "api/component_registry.h"
#include "api/param_map.h"
#include "io/codecs.h"

namespace ccd {
namespace io {

namespace {

void WriteU64Vector(Writer& w, const std::vector<uint64_t>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (uint64_t x : v) w.U64(x);
}

std::vector<uint64_t> ReadU64Vector(Reader& r, const char* field) {
  uint32_t n = r.Count(field);
  std::vector<uint64_t> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.push_back(r.U64(field));
  return out;
}

void WriteAlarm(Writer& w, const DriftAlarm& a) {
  w.U64(a.position);
  WriteIntVector(w, a.drifted_classes);
}

DriftAlarm ReadAlarm(Reader& r) {
  DriftAlarm a;
  a.position = r.U64("alarm.position");
  a.drifted_classes = ReadIntVector(r, "alarm.drifted_classes");
  return a;
}

}  // namespace

void WriteConfig(Writer& w, const PrequentialConfig& config) {
  w.BeginSection("PrequentialConfig");
  w.U64(config.max_instances);
  w.I64(config.metric_window);
  w.I64(config.eval_interval);
  w.U64(config.warmup);
  w.Bool(config.reset_on_drift);
  w.Bool(config.timing);
  w.I64(config.shards);
  w.EndSection();
}

PrequentialConfig ReadConfig(Reader& r) {
  r.BeginSection("PrequentialConfig");
  PrequentialConfig c;
  c.max_instances = r.U64("config.max_instances");
  c.metric_window = static_cast<int>(r.I64("config.metric_window"));
  c.eval_interval = static_cast<int>(r.I64("config.eval_interval"));
  c.warmup = r.U64("config.warmup");
  c.reset_on_drift = r.Bool("config.reset_on_drift");
  c.timing = r.Bool("config.timing");
  c.shards = static_cast<int>(r.I64("config.shards"));
  r.EndSection("PrequentialConfig");
  // The same degeneracy gate every run-entry point applies; a config that
  // would divide by zero must not survive deserialization either.
  try {
    ValidatePrequentialConfig(c);
  } catch (const std::invalid_argument& e) {
    r.Fail("config", e.what());
  }
  return c;
}

void WriteSnapshot(Writer& w, const EngineSnapshot& s) {
  w.BeginSection("EngineSnapshot");
  w.U64(s.position);
  w.U64(s.pending);
  w.U64(s.evicted);
  w.U64(s.unmatched_labels);
  w.U64(s.metric_samples);
  w.U64(s.next_id);
  WriteDetectorState(w, s.last_detector_state);
  w.U32(static_cast<uint32_t>(s.drift_log.size()));
  for (const DriftAlarm& a : s.drift_log) WriteAlarm(w, a);
  WriteU64Vector(w, s.class_counts);
  w.U32(static_cast<uint32_t>(s.window.size()));
  for (const WindowedMetrics::Entry& e : s.window) {
    w.I64(e.truth);
    w.I64(e.predicted);
    w.F64Array(e.scores);
  }
  w.U32(static_cast<uint32_t>(s.pending_predictions.size()));
  for (const EngineSnapshot::PendingEntry& p : s.pending_predictions) {
    w.U64(p.id);
    WriteInstance(w, p.instance);
    w.I64(p.predicted);
    w.F64Array(p.scores);
  }
  w.F64(s.sum_pmauc);
  w.F64(s.sum_pmgm);
  w.F64(s.sum_accuracy);
  w.F64(s.sum_kappa);
  w.U32(static_cast<uint32_t>(s.pmauc_series.size()));
  for (const auto& sample : s.pmauc_series) {
    w.U64(sample.first);
    w.F64(sample.second);
  }
  w.F64(s.detector_seconds);
  w.F64(s.classifier_seconds);
  w.EndSection();
}

EngineSnapshot ReadSnapshot(Reader& r) {
  r.BeginSection("EngineSnapshot");
  EngineSnapshot s;
  s.position = r.U64("snapshot.position");
  s.pending = r.U64("snapshot.pending");
  s.evicted = r.U64("snapshot.evicted");
  s.unmatched_labels = r.U64("snapshot.unmatched_labels");
  s.metric_samples = r.U64("snapshot.metric_samples");
  s.next_id = r.U64("snapshot.next_id");
  s.last_detector_state = ReadDetectorState(r, "snapshot.last_detector_state");
  uint32_t alarms = r.Count("snapshot.drift_log");
  s.drift_log.reserve(alarms);
  for (uint32_t i = 0; i < alarms; ++i) s.drift_log.push_back(ReadAlarm(r));
  s.class_counts = ReadU64Vector(r, "snapshot.class_counts");
  uint32_t window = r.Count("snapshot.window");
  s.window.reserve(window);
  for (uint32_t i = 0; i < window; ++i) {
    WindowedMetrics::Entry e;
    e.truth = static_cast<int>(r.I64("snapshot.window.truth"));
    e.predicted = static_cast<int>(r.I64("snapshot.window.predicted"));
    e.scores = r.F64Array("snapshot.window.scores");
    s.window.push_back(std::move(e));
  }
  uint32_t parked = r.Count("snapshot.pending_predictions");
  s.pending_predictions.reserve(parked);
  for (uint32_t i = 0; i < parked; ++i) {
    EngineSnapshot::PendingEntry p;
    p.id = r.U64("snapshot.pending.id");
    p.instance = ReadInstance(r);
    p.predicted = static_cast<int>(r.I64("snapshot.pending.predicted"));
    p.scores = r.F64Array("snapshot.pending.scores");
    s.pending_predictions.push_back(std::move(p));
  }
  s.sum_pmauc = r.F64("snapshot.sum_pmauc");
  s.sum_pmgm = r.F64("snapshot.sum_pmgm");
  s.sum_accuracy = r.F64("snapshot.sum_accuracy");
  s.sum_kappa = r.F64("snapshot.sum_kappa");
  uint32_t samples = r.Count("snapshot.pmauc_series");
  s.pmauc_series.reserve(samples);
  for (uint32_t i = 0; i < samples; ++i) {
    uint64_t pos = r.U64("snapshot.pmauc_series.position");
    double value = r.F64("snapshot.pmauc_series.value");
    s.pmauc_series.emplace_back(pos, value);
  }
  s.detector_seconds = r.F64("snapshot.detector_seconds");
  s.classifier_seconds = r.F64("snapshot.classifier_seconds");
  r.EndSection("EngineSnapshot");
  return s;
}

std::string EncodeStateImage(const StateImage& image) {
  Writer w;
  w.BeginSection("StateImage");
  WriteSchema(w, image.schema);
  w.String(image.classifier);
  w.String(image.classifier_params);
  w.String(image.detector);
  w.String(image.detector_params);
  w.U64(image.seed);
  WriteConfig(w, image.config);
  WriteSnapshot(w, image.state.snapshot);
  if (image.state.classifier == nullptr) {
    throw std::logic_error("EncodeStateImage: image carries no classifier");
  }
  image.state.classifier->SaveState(w);
  w.Bool(image.state.detector != nullptr);
  if (image.state.detector != nullptr) image.state.detector->SaveState(w);
  w.EndSection();
  return SealEnvelope(w.data());
}

StateImage DecodeStateImage(const std::string& bytes) {
  std::string body = OpenEnvelope(bytes);
  Reader r(body);
  r.BeginSection("StateImage");
  StateImage image;
  image.schema = ReadSchema(r);
  image.classifier = r.String("image.classifier");
  image.classifier_params = r.String("image.classifier_params");
  image.detector = r.String("image.detector");
  image.detector_params = r.String("image.detector_params");
  image.seed = r.U64("image.seed");
  image.config = ReadConfig(r);
  image.state.snapshot = ReadSnapshot(r);
  // Rebuild the components from their registry identity, then overwrite
  // the fresh instances' learned state from the wire. Registry failures
  // (unknown name, bad params) are a property of the *bytes* here, so
  // they surface as WireError like every other malformed-input path.
  try {
    image.state.classifier = api::Classifiers().Create(
        image.classifier, image.schema, image.seed,
        api::ParamMap::Parse(image.classifier_params));
    if (!image.detector.empty()) {
      image.state.detector = api::Detectors().Create(
          image.detector, image.schema, image.seed,
          api::ParamMap::Parse(image.detector_params));
    }
  } catch (const api::ApiError& e) {
    r.Fail("image.components", e.what());
  }
  image.state.classifier->LoadState(r);
  const bool has_detector = r.Bool("image.has_detector");
  if (has_detector != (image.state.detector != nullptr)) {
    r.Fail("image.has_detector",
           "detector presence flag disagrees with the detector name");
  }
  if (image.state.detector != nullptr) image.state.detector->LoadState(r);
  r.EndSection("StateImage");
  r.ExpectEnd("StateImage envelope");
  return image;
}

const char kManifestName[] = "MANIFEST";

std::string EncodeManifest(const Manifest& m) {
  Writer w;
  w.BeginSection("Manifest");
  WriteSchema(w, m.schema);
  w.String(m.classifier);
  w.String(m.classifier_params);
  w.String(m.detector);
  w.String(m.detector_params);
  w.U64(m.seed);
  WriteConfig(w, m.config);
  w.U64(m.pending_capacity);
  w.U8(m.mode);
  w.U64(m.merge_every);
  w.U64(m.completed_total);
  w.U64(m.generation);
  w.U32(static_cast<uint32_t>(m.shards.size()));
  for (const Manifest::ShardFile& f : m.shards) {
    w.String(f.file);
    w.U64(f.size);
    w.U32(f.crc);
  }
  w.EndSection();
  return SealEnvelope(w.data());
}

Manifest DecodeManifest(const std::string& bytes) {
  std::string body = OpenEnvelope(bytes);
  Reader r(body);
  r.BeginSection("Manifest");
  Manifest m;
  m.schema = ReadSchema(r);
  m.classifier = r.String("manifest.classifier");
  m.classifier_params = r.String("manifest.classifier_params");
  m.detector = r.String("manifest.detector");
  m.detector_params = r.String("manifest.detector_params");
  m.seed = r.U64("manifest.seed");
  m.config = ReadConfig(r);
  m.pending_capacity = r.U64("manifest.pending_capacity");
  m.mode = r.U8("manifest.mode");
  if (m.mode > 1) {
    r.Fail("manifest.mode", "unknown routing mode " + std::to_string(m.mode));
  }
  m.merge_every = r.U64("manifest.merge_every");
  m.completed_total = r.U64("manifest.completed_total");
  m.generation = r.U64("manifest.generation");
  uint32_t n = r.Count("manifest.shards", 1u << 20);
  if (n == 0) {
    r.Fail("manifest.shards", "a persisted monitor has at least one shard");
  }
  m.shards.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Manifest::ShardFile f;
    f.file = r.String("manifest.shard.file");
    f.size = r.U64("manifest.shard.size");
    f.crc = r.U32("manifest.shard.crc");
    m.shards.push_back(std::move(f));
  }
  r.EndSection("Manifest");
  r.ExpectEnd("Manifest envelope");
  return m;
}

}  // namespace io
}  // namespace ccd
