#ifndef CCD_IO_CODECS_H_
#define CCD_IO_CODECS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "detectors/detector.h"
#include "io/wire.h"
#include "stats/trend.h"
#include "stats/welford.h"
#include "stream/instance.h"
#include "stream/normalizer.h"
#include "utils/rng.h"

namespace ccd {
namespace io {

/// Logical version of the per-component field schemas — the *meaning* of
/// the bytes each SaveState() emits, as opposed to wire.h's
/// kFormatVersion which versions the tag/envelope encoding itself. Bump
/// this whenever any serialized class's field set or wire call sequence
/// changes, then re-pin the manifest with
/// `python3 tools/state_audit.py --update`; the static-analysis CI job
/// fails any schema change that skips the bump (schema-drift gate
/// against tools/wire_schema.json).
inline constexpr uint32_t kStateSchemaVersion = 2;

/// Small-type codecs shared by every component's SaveState()/LoadState().
/// Each pair is an exact inverse: Read*(Write*(x)) reproduces x bit for
/// bit, including the floating-point internals accessor-exposed for this
/// purpose (Welford m2, SlidingTrend running sums, Rng Gaussian cache).
/// Readers validate as they go and throw WireError on malformed input.

void WriteSchema(Writer& w, const StreamSchema& schema);
StreamSchema ReadSchema(Reader& r);

void WriteInstance(Writer& w, const Instance& x);
Instance ReadInstance(Reader& r);

void WriteDetectorState(Writer& w, DetectorState s);
DetectorState ReadDetectorState(Reader& r, const char* field);

void WriteWelford(Writer& w, const Welford& s);
Welford ReadWelford(Reader& r);

void WriteRng(Writer& w, const Rng& rng);
void ReadRngInto(Reader& r, Rng* rng);

void WriteTrend(Writer& w, const SlidingTrend& t);
void ReadTrendInto(Reader& r, SlidingTrend* t);

void WriteNormalizer(Writer& w, const MinMaxNormalizer& n);
void ReadNormalizerInto(Reader& r, MinMaxNormalizer* n);

/// deque<double> / vector-of-bool style helpers used by windowed detectors.
void WriteF64Deque(Writer& w, const std::deque<double>& v);
std::deque<double> ReadF64Deque(Reader& r, const char* field);

void WriteBoolDeque(Writer& w, const std::deque<bool>& v);
std::deque<bool> ReadBoolDeque(Reader& r, const char* field);

void WriteBoolVector(Writer& w, const std::vector<bool>& v);
std::vector<bool> ReadBoolVector(Reader& r, const char* field);

void WriteI64Vector(Writer& w, const std::vector<long long>& v);
std::vector<long long> ReadI64Vector(Reader& r, const char* field);

void WriteIntVector(Writer& w, const std::vector<int>& v);
std::vector<int> ReadIntVector(Reader& r, const char* field);

}  // namespace io
}  // namespace ccd

#endif  // CCD_IO_CODECS_H_
