#ifndef CCD_IO_FRAME_SERVER_H_
#define CCD_IO_FRAME_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/sync.h"
#include "runtime/thread_pool.h"

namespace ccd {
namespace io {

/// Framed request/response server over a Unix-domain socket: accepts
/// connections on a blocking listener thread and serves each connection
/// on a runtime::ThreadPool worker, reading one frame (io/frame.h),
/// handing it to the handler, and writing the handler's return as the
/// response frame — strict one-in-one-out per connection, which is all a
/// monitoring front door needs and keeps the protocol trivially
/// debuggable with FrameClient.
///
/// A handler that throws closes that connection (the error is the
/// *connection's*, not the server's); protocol-level errors should be
/// encoded in the response payload instead (io::MonitorService returns
/// "ERR <message>"). Handlers run concurrently on pool workers — the
/// handler owns its thread-safety (ShardedMonitor's surface already is).
class FrameServer {
 public:
  using Handler = std::function<std::string(const std::string& request)>;

  /// Binds and listens on `socket_path` (an existing socket file is
  /// unlinked first — stale sockets of a crashed predecessor must not
  /// block a restart) and starts accepting. `pool` serves the
  /// connections and must outlive the server; nullptr creates a private
  /// 4-worker pool. Throws WireError when bind/listen fails.
  FrameServer(std::string socket_path, Handler handler,
              runtime::ThreadPool* pool = nullptr);

  /// Stop() + join.
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Shuts the listener and every open connection down (shutdown(2), so
  /// blocked reads return immediately), joins the accept thread, and
  /// unlinks the socket file. Idempotent.
  void Stop();

  const std::string& socket_path() const { return path_; }

 private:
  void AcceptLoop();
  void Serve(int fd);
  /// Tracks `fd` so Stop() can shut it down; returns false when the
  /// server is already stopping (caller closes the fd instead).
  bool TrackConnection(int fd);
  void UntrackConnection(int fd);

  std::string path_;
  Handler handler_;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;
  runtime::ThreadPool* pool_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  runtime::Mutex mutex_;
  /// Live connection fds — Stop() shuts them all down under the lock.
  std::vector<int> connections_ CCD_GUARDED_BY(mutex_);
  std::unique_ptr<std::thread> accept_thread_;
};

/// Blocking client of a FrameServer: connect once, then Call() sends a
/// request frame and waits for the response frame. One outstanding call
/// at a time (matching the server's one-in-one-out contract).
class FrameClient {
 public:
  /// Connects to `socket_path`; throws WireError when the server is not
  /// there.
  explicit FrameClient(const std::string& socket_path);
  ~FrameClient();

  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  /// One request/response round trip. Throws WireError when the server
  /// hangs up or the frame is malformed.
  std::string Call(const std::string& request);

 private:
  int fd_ = -1;
};

}  // namespace io
}  // namespace ccd

#endif  // CCD_IO_FRAME_SERVER_H_
