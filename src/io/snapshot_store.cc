#include "io/snapshot_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "io/wire.h"

namespace ccd {
namespace io {

namespace {

/// Errno-flavored WireError: persistence failures carry the same typed
/// error as wire corruption, with the file standing in for the field.
[[noreturn]] void FailIo(const std::string& path, const std::string& what) {
  throw WireError(path, 0, what + ": " + ErrnoText(errno));
}

/// EINTR-proof full write.
void WriteAll(int fd, const char* data, size_t size, const std::string& path) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailIo(path, "write failed");
    }
    done += static_cast<size_t>(n);
  }
}

}  // namespace

SnapshotStore::SnapshotStore(std::string directory)
    : dir_(std::move(directory)) {
  if (dir_.empty()) {
    throw WireError("<store>", 0, "snapshot directory must be non-empty");
  }
  while (dir_.size() > 1 && dir_.back() == '/') dir_.pop_back();
  struct stat st;
  if (::stat(dir_.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      throw WireError(dir_, 0, "exists but is not a directory");
    }
    return;
  }
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    FailIo(dir_, "cannot create snapshot directory");
  }
}

void SnapshotStore::CheckName(const std::string& name) const {
  if (name.empty() || name == "." || name == ".." ||
      name.find('/') != std::string::npos) {
    throw WireError(name, 0, "snapshot names must be bare file names");
  }
}

std::string SnapshotStore::Path(const std::string& name) const {
  CheckName(name);
  return dir_ + "/" + name;
}

void SnapshotStore::SyncDir() const {
  int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) FailIo(dir_, "cannot open directory for fsync");
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    FailIo(dir_, "directory fsync failed");
  }
  ::close(fd);
}

void SnapshotStore::Write(const std::string& name, const std::string& bytes) {
  const std::string final_path = Path(name);
  // Hidden temp name: crash debris is recognizable (and List() callers can
  // see it), while a rename() over the final name stays atomic within the
  // same directory.
  const std::string tmp_path = dir_ + "/." + name + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) FailIo(tmp_path, "cannot create temp file");
  try {
    WriteAll(fd, bytes.data(), bytes.size(), tmp_path);
    if (::fsync(fd) != 0) FailIo(tmp_path, "fsync failed");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    FailIo(tmp_path, "close failed");
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    int saved = errno;
    ::unlink(tmp_path.c_str());
    errno = saved;
    FailIo(final_path, "rename failed");
  }
  SyncDir();
}

std::string SnapshotStore::Read(const std::string& name) const {
  const std::string path = Path(name);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) FailIo(path, "cannot open snapshot");
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      FailIo(path, "read failed");
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool SnapshotStore::Exists(const std::string& name) const {
  struct stat st;
  return ::stat(Path(name).c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

void SnapshotStore::Remove(const std::string& name) {
  const std::string path = Path(name);
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return;
    FailIo(path, "unlink failed");
  }
  SyncDir();
}

std::vector<std::string> SnapshotStore::List() const {
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) FailIo(dir_, "cannot list snapshot directory");
  std::vector<std::string> names;
  for (struct dirent* e = ::readdir(dir); e != nullptr; e = ::readdir(dir)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir_ + "/" + name).c_str(), &st) != 0) continue;
    if (S_ISREG(st.st_mode)) names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace io
}  // namespace ccd
