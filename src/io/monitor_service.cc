#include "io/monitor_service.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ccd {
namespace io {

namespace {

/// %.17g: the shortest printf precision that round-trips every finite
/// double bit-exactly — the text protocol must not be where bit-identical
/// serving quietly dies.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double ParseDouble(const std::string& token, const char* what) {
  size_t used = 0;
  double v;
  try {
    v = std::stod(token, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(what) + " '" + token +
                                "' is not a number");
  }
  if (used != token.size()) {
    throw std::invalid_argument(std::string(what) + " '" + token +
                                "' has trailing characters");
  }
  return v;
}

uint64_t ParseU64(const std::string& token, const char* what) {
  size_t used = 0;
  unsigned long long v;
  try {
    v = std::stoull(token, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(what) + " '" + token +
                                "' is not a non-negative integer");
  }
  if (used != token.size()) {
    throw std::invalid_argument(std::string(what) + " '" + token +
                                "' has trailing characters");
  }
  return static_cast<uint64_t>(v);
}

int ParseInt(const std::string& token, const char* what) {
  size_t used = 0;
  int v;
  try {
    v = std::stoi(token, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(what) + " '" + token +
                                "' is not an integer");
  }
  if (used != token.size()) {
    throw std::invalid_argument(std::string(what) + " '" + token +
                                "' has trailing characters");
  }
  return v;
}

std::vector<double> ParseFeatures(const std::vector<std::string>& tokens,
                                  size_t from) {
  if (from >= tokens.size()) {
    throw std::invalid_argument("missing feature values");
  }
  std::vector<double> features;
  features.reserve(tokens.size() - from);
  for (size_t i = from; i < tokens.size(); ++i) {
    features.push_back(ParseDouble(tokens[i], "feature"));
  }
  return features;
}

std::string FormatPrediction(const api::ShardedMonitor::Prediction& p) {
  std::string out = "OK " + std::to_string(p.shard) + " " +
                    std::to_string(p.id) + " " + std::to_string(p.label);
  for (double s : p.scores) out += " " + FormatDouble(s);
  return out;
}

}  // namespace

MonitorService::MonitorService(api::ShardedMonitor* monitor,
                               std::string default_persist_dir)
    : monitor_(monitor), default_persist_dir_(std::move(default_persist_dir)) {}

std::string MonitorService::Handle(const std::string& request) {
  try {
    return Dispatch(request);
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
}

std::string MonitorService::Dispatch(const std::string& request) {
  // The two binary commands split at the first newline; everything before
  // it is the text header, everything after the verbatim payload.
  const size_t newline = request.find('\n');
  const std::string header =
      newline == std::string::npos ? request : request.substr(0, newline);

  std::istringstream in(header);
  std::vector<std::string> tokens;
  for (std::string token; in >> token;) tokens.push_back(std::move(token));
  if (tokens.empty()) throw std::invalid_argument("empty request");
  const std::string& command = tokens[0];
  const bool keyed = monitor_->mode() == runtime::RoutingMode::kHashKey;

  if (command == "PREDICT") {
    if (keyed) {
      if (tokens.size() < 3) {
        throw std::invalid_argument("usage: PREDICT <key> <features...>");
      }
      uint64_t key = ParseU64(tokens[1], "key");
      return FormatPrediction(monitor_->Predict(key, ParseFeatures(tokens, 2)));
    }
    return FormatPrediction(monitor_->Predict(ParseFeatures(tokens, 1)));
  }

  if (command == "FEED") {
    Instance instance;
    if (keyed) {
      if (tokens.size() < 4) {
        throw std::invalid_argument("usage: FEED <key> <label> <features...>");
      }
      uint64_t key = ParseU64(tokens[1], "key");
      instance.label = ParseInt(tokens[2], "label");
      instance.features = ParseFeatures(tokens, 3);
      monitor_->Feed(key, instance);
    } else {
      if (tokens.size() < 3) {
        throw std::invalid_argument("usage: FEED <label> <features...>");
      }
      instance.label = ParseInt(tokens[1], "label");
      instance.features = ParseFeatures(tokens, 2);
      monitor_->Feed(instance);
    }
    return "OK";
  }

  if (command == "LABEL") {
    if (tokens.size() != 4) {
      throw std::invalid_argument("usage: LABEL <shard> <id> <label>");
    }
    bool applied = monitor_->Label(ParseInt(tokens[1], "shard"),
                                   ParseU64(tokens[2], "id"),
                                   ParseInt(tokens[3], "label"));
    return applied ? "OK applied" : "OK unknown";
  }

  if (command == "STATS") {
    return "OK position=" + std::to_string(monitor_->position()) +
           " pending=" + std::to_string(monitor_->pending()) +
           " evicted=" + std::to_string(monitor_->evicted()) +
           " unmatched=" + std::to_string(monitor_->unmatched_labels()) +
           " shards=" + std::to_string(monitor_->shards()) +
           " drifts=" + std::to_string(monitor_->DriftLog().size());
  }

  if (command == "RESULT") {
    PrequentialResult r = monitor_->Result();
    return "OK pmauc=" + FormatDouble(r.mean_pmauc) +
           " pmgm=" + FormatDouble(r.mean_pmgm) +
           " accuracy=" + FormatDouble(r.mean_accuracy) +
           " kappa=" + FormatDouble(r.mean_kappa) +
           " instances=" + std::to_string(r.instances) +
           " drifts=" + std::to_string(r.drifts);
  }

  if (command == "PERSIST") {
    std::string dir =
        tokens.size() >= 2 ? tokens[1] : default_persist_dir_;
    if (dir.empty()) {
      throw std::invalid_argument(
          "PERSIST needs a directory (none configured)");
    }
    monitor_->Persist(dir);
    return "OK " + dir;
  }

  if (command == "SHIP") {
    if (tokens.size() != 2) throw std::invalid_argument("usage: SHIP <shard>");
    return "OK\n" + monitor_->ShipShard(ParseInt(tokens[1], "shard"));
  }

  if (command == "LOAD") {
    if (tokens.size() != 2 || newline == std::string::npos) {
      throw std::invalid_argument(
          "usage: LOAD <shard>\\n<state image bytes>");
    }
    monitor_->RestoreShard(ParseInt(tokens[1], "shard"),
                           request.substr(newline + 1));
    return "OK";
  }

  throw std::invalid_argument(
      "unknown command '" + command +
      "'; commands: PREDICT FEED LABEL STATS RESULT PERSIST SHIP LOAD");
}

}  // namespace io
}  // namespace ccd
