#ifndef CCD_IO_WIRE_H_
#define CCD_IO_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccd {
namespace io {

/// Error type of the whole io layer: every malformed, truncated or
/// corrupted input — wire decoding, snapshot files, socket frames —
/// surfaces as a WireError naming the offending field and the byte offset
/// it was detected at. Decoding hostile bytes must *only* ever throw this
/// (never UB, never a silent partial state); tests/io_wire_test.cc holds
/// the codec to that with a corruption matrix.
class WireError : public std::runtime_error {
 public:
  WireError(std::string field, size_t offset, const std::string& message)
      : std::runtime_error("io::WireError at offset " +
                           std::to_string(offset) + " (field '" + field +
                           "'): " + message),
        field_(std::move(field)),
        offset_(offset) {}

  /// The field (or section / file) being decoded when the error surfaced.
  const std::string& field() const { return field_; }
  /// Byte offset into the buffer (or a file-level marker) at detection.
  size_t offset() const { return offset_; }

 private:
  std::string field_;
  size_t offset_;
};

/// Per-value type tags: every primitive on the wire is preceded by one tag
/// byte, so a reader that expects a u64 where a f64 was written fails with
/// a typed WireError instead of reinterpreting bytes. Tag values are wire
/// contract — never renumber, only append.
enum class Tag : uint8_t {
  kU8 = 0x01,
  kU32 = 0x02,
  kU64 = 0x03,
  kI64 = 0x04,
  kF64 = 0x05,
  kBool = 0x06,
  kString = 0x07,
  kBytes = 0x08,
  kF64Array = 0x09,  ///< u32 count + packed 8-byte doubles (bulk weights).
  kSection = 0x0A,   ///< Named, length-prefixed nested block.
};

const char* TagName(Tag tag);

/// Hard cap on any single length prefix (strings, byte blobs, arrays,
/// sections, frames). An "oversized length prefix" in a corrupted input
/// fails against this or against the remaining-byte count — whichever is
/// smaller — before any allocation happens.
constexpr uint32_t kMaxLengthPrefix = 256u * 1024u * 1024u;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes.
/// Chainable: pass a previous result as `seed` to continue a running CRC.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
uint32_t Crc32(const std::string& bytes);

/// Append-only binary encoder of the versioned wire format: every value is
/// tagged (see Tag) and multi-byte payloads are pinned little-endian byte
/// by byte, so encodings are identical across platforms. F64 round-trips
/// bit-exactly (the payload is the IEEE-754 bit pattern, NaNs included) —
/// the property the bit-identical restore contract rests on.
class Writer {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v);
  void F64(double v);
  void Bool(bool v);
  void String(const std::string& v);
  void Bytes(const std::string& v);
  /// Bulk doubles: one tag + count prefix, packed payload — the encoding
  /// for weight matrices and score vectors.
  void F64Array(const std::vector<double>& v);

  /// Opens a named, length-prefixed section; close with EndSection().
  /// Sections nest. The length prefix lets a reader bound every nested
  /// read, so truncation at any section boundary is a typed error.
  void BeginSection(const std::string& name);
  void EndSection();

  /// Encoded bytes so far. Throws std::logic_error when a section is
  /// still open (an unbalanced writer is a caller bug, not data).
  const std::string& data() const;
  /// Moves the buffer out; the writer is reusable (empty) afterwards.
  std::string Release();

 private:
  void PutTag(Tag tag);
  void PutRawU32(uint32_t v);
  void PutRawU64(uint64_t v);

  std::string buf_;
  std::vector<size_t> open_sections_;  ///< Offsets of length placeholders.
};

/// Bounds-checked decoder over an externally owned byte buffer (the buffer
/// must outlive the reader). Every accessor takes the field name it is
/// decoding; any mismatch — truncation, wrong tag, oversized length
/// prefix, section overrun — throws WireError naming that field and the
/// current offset. No read ever touches bytes past the buffer (or past the
/// innermost section's declared length), so corrupted input cannot cause
/// out-of-bounds access.
class Reader {
 public:
  explicit Reader(const std::string& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8(const char* field);
  uint32_t U32(const char* field);
  uint64_t U64(const char* field);
  int64_t I64(const char* field);
  double F64(const char* field);
  bool Bool(const char* field);
  std::string String(const char* field);
  std::string Bytes(const char* field);
  std::vector<double> F64Array(const char* field);

  /// Enters the section `name`; a section with any other name (or any
  /// non-section tag) is a WireError — the "wrong component name" failure
  /// mode of a snapshot whose bytes belong to a different component.
  void BeginSection(const char* name);
  /// Leaves the innermost section; trailing undecoded bytes inside it are
  /// an error (they mean reader and writer disagree on the layout).
  void EndSection(const char* name);

  /// Decoded-size helper for count prefixes: reads a U32 and validates it
  /// against `max` (element-count sanity for containers).
  uint32_t Count(const char* field, uint32_t max = kMaxLengthPrefix);

  size_t offset() const { return pos_; }
  bool AtEnd() const { return pos_ == Limit(); }
  /// Throws unless the buffer (or innermost section) is fully consumed.
  void ExpectEnd(const char* what) const;

  [[noreturn]] void Fail(const char* field, const std::string& message) const {
    throw WireError(field, pos_, message);
  }

 private:
  size_t Limit() const {
    return section_ends_.empty() ? size_ : section_ends_.back();
  }
  /// Bounds check against the innermost limit, then advance.
  const char* Need(size_t n, const char* field);
  void RequireTag(Tag expected, const char* field);
  uint32_t RawU32(const char* field);
  uint64_t RawU64(const char* field);
  /// Validated length prefix: <= kMaxLengthPrefix and within the limit.
  uint32_t LengthPrefix(const char* field);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  std::vector<size_t> section_ends_;
};

// ------------------------------------------------------------- envelope

/// Format version of everything the io layer writes (state images,
/// manifests). Bump on any incompatible layout change; readers reject
/// other versions with a typed error instead of misparsing.
constexpr uint32_t kFormatVersion = 1;

/// File/blob magic: "CCDS" little-endian.
constexpr uint32_t kMagic = 0x53444343u;

/// Wraps `body` in the self-checking envelope every persisted or shipped
/// blob uses: [magic u32][version u32][body][crc32 u32 over all prior
/// bytes], all little-endian. The trailer CRC makes torn writes and
/// bit flips detectable without trusting any length field.
std::string SealEnvelope(const std::string& body);

/// Validates magic, version and CRC and returns the body. Throws
/// WireError on a short buffer, foreign magic, unsupported version or a
/// CRC mismatch — the file-corruption half of the corruption matrix.
std::string OpenEnvelope(const std::string& bytes);

/// Thread-safe strerror: the message for `err` (an errno value) without
/// the static buffer std::strerror shares between threads — the io layer
/// reports errno from concurrently-serving FrameServer handlers, where
/// strerror's buffer is a data race (flagged by clang-tidy's
/// concurrency-mt-unsafe).
std::string ErrnoText(int err);

}  // namespace io
}  // namespace ccd

#endif  // CCD_IO_WIRE_H_
