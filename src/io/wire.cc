#include "io/wire.h"

#include <cstring>
#include <system_error>

namespace ccd {
namespace io {

std::string ErrnoText(int err) {
  // std::error_code::message() formats into a caller-owned string — no
  // shared static buffer, unlike std::strerror.
  return std::error_code(err, std::generic_category()).message();
}

const char* TagName(Tag tag) {
  switch (tag) {
    case Tag::kU8:
      return "u8";
    case Tag::kU32:
      return "u32";
    case Tag::kU64:
      return "u64";
    case Tag::kI64:
      return "i64";
    case Tag::kF64:
      return "f64";
    case Tag::kBool:
      return "bool";
    case Tag::kString:
      return "string";
    case Tag::kBytes:
      return "bytes";
    case Tag::kF64Array:
      return "f64-array";
    case Tag::kSection:
      return "section";
  }
  return "unknown";
}

namespace {

// Table-driven CRC-32; the table is built once on first use.
const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void AppendRawU32(std::string* buf, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFFu);
  b[1] = static_cast<char>((v >> 8) & 0xFFu);
  b[2] = static_cast<char>((v >> 16) & 0xFFu);
  b[3] = static_cast<char>((v >> 24) & 0xFFu);
  buf->append(b, 4);
}

uint32_t LoadRawU32(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = CrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------- Writer

void Writer::PutTag(Tag tag) { buf_.push_back(static_cast<char>(tag)); }

void Writer::PutRawU32(uint32_t v) { AppendRawU32(&buf_, v); }

void Writer::PutRawU64(uint64_t v) {
  PutRawU32(static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutRawU32(static_cast<uint32_t>(v >> 32));
}

void Writer::U8(uint8_t v) {
  PutTag(Tag::kU8);
  buf_.push_back(static_cast<char>(v));
}

void Writer::U32(uint32_t v) {
  PutTag(Tag::kU32);
  PutRawU32(v);
}

void Writer::U64(uint64_t v) {
  PutTag(Tag::kU64);
  PutRawU64(v);
}

void Writer::I64(int64_t v) {
  PutTag(Tag::kI64);
  PutRawU64(static_cast<uint64_t>(v));
}

void Writer::F64(double v) {
  PutTag(Tag::kF64);
  PutRawU64(DoubleBits(v));
}

void Writer::Bool(bool v) {
  PutTag(Tag::kBool);
  buf_.push_back(v ? '\x01' : '\x00');
}

void Writer::String(const std::string& v) {
  if (v.size() > kMaxLengthPrefix) {
    throw std::logic_error("io::Writer: string exceeds kMaxLengthPrefix");
  }
  PutTag(Tag::kString);
  PutRawU32(static_cast<uint32_t>(v.size()));
  buf_.append(v);
}

void Writer::Bytes(const std::string& v) {
  if (v.size() > kMaxLengthPrefix) {
    throw std::logic_error("io::Writer: blob exceeds kMaxLengthPrefix");
  }
  PutTag(Tag::kBytes);
  PutRawU32(static_cast<uint32_t>(v.size()));
  buf_.append(v);
}

void Writer::F64Array(const std::vector<double>& v) {
  if (v.size() > kMaxLengthPrefix / 8) {
    throw std::logic_error("io::Writer: array exceeds kMaxLengthPrefix");
  }
  PutTag(Tag::kF64Array);
  PutRawU32(static_cast<uint32_t>(v.size()));
  for (double d : v) PutRawU64(DoubleBits(d));
}

void Writer::BeginSection(const std::string& name) {
  PutTag(Tag::kSection);
  if (name.size() > kMaxLengthPrefix) {
    throw std::logic_error("io::Writer: section name too long");
  }
  PutRawU32(static_cast<uint32_t>(name.size()));
  buf_.append(name);
  open_sections_.push_back(buf_.size());
  PutRawU32(0);  // Body-length placeholder, patched by EndSection().
}

void Writer::EndSection() {
  if (open_sections_.empty()) {
    throw std::logic_error("io::Writer: EndSection() without BeginSection()");
  }
  size_t at = open_sections_.back();
  open_sections_.pop_back();
  size_t body = buf_.size() - (at + 4);
  if (body > kMaxLengthPrefix) {
    throw std::logic_error("io::Writer: section exceeds kMaxLengthPrefix");
  }
  std::string patch;
  AppendRawU32(&patch, static_cast<uint32_t>(body));
  buf_.replace(at, 4, patch);
}

const std::string& Writer::data() const {
  if (!open_sections_.empty()) {
    throw std::logic_error("io::Writer: unclosed section at data()");
  }
  return buf_;
}

std::string Writer::Release() {
  if (!open_sections_.empty()) {
    throw std::logic_error("io::Writer: unclosed section at Release()");
  }
  std::string out = std::move(buf_);
  buf_.clear();
  return out;
}

// ---------------------------------------------------------------- Reader

const char* Reader::Need(size_t n, const char* field) {
  size_t limit = Limit();
  if (pos_ + n > limit || pos_ + n < pos_) {
    Fail(field, "truncated: need " + std::to_string(n) + " byte(s), " +
                    std::to_string(limit - pos_) + " remain");
  }
  const char* p = data_ + pos_;
  pos_ += n;
  return p;
}

void Reader::RequireTag(Tag expected, const char* field) {
  size_t at = pos_;
  const char* p = Need(1, field);
  uint8_t got = static_cast<uint8_t>(*p);
  if (got != static_cast<uint8_t>(expected)) {
    throw WireError(field, at,
                    std::string("expected ") + TagName(expected) +
                        " tag, found " + TagName(static_cast<Tag>(got)) +
                        " (0x" + std::to_string(got) + ")");
  }
}

uint32_t Reader::RawU32(const char* field) {
  return LoadRawU32(Need(4, field));
}

uint64_t Reader::RawU64(const char* field) {
  const char* p = Need(8, field);
  return static_cast<uint64_t>(LoadRawU32(p)) |
         (static_cast<uint64_t>(LoadRawU32(p + 4)) << 32);
}

uint32_t Reader::LengthPrefix(const char* field) {
  size_t at = pos_;
  uint32_t len = RawU32(field);
  if (len > kMaxLengthPrefix) {
    throw WireError(field, at,
                    "oversized length prefix: " + std::to_string(len) +
                        " exceeds cap " + std::to_string(kMaxLengthPrefix));
  }
  if (pos_ + len > Limit()) {
    throw WireError(field, at,
                    "oversized length prefix: " + std::to_string(len) +
                        " byte(s) declared, " + std::to_string(Limit() - pos_) +
                        " remain");
  }
  return len;
}

uint8_t Reader::U8(const char* field) {
  RequireTag(Tag::kU8, field);
  return static_cast<uint8_t>(*Need(1, field));
}

uint32_t Reader::U32(const char* field) {
  RequireTag(Tag::kU32, field);
  return RawU32(field);
}

uint64_t Reader::U64(const char* field) {
  RequireTag(Tag::kU64, field);
  return RawU64(field);
}

int64_t Reader::I64(const char* field) {
  RequireTag(Tag::kI64, field);
  return static_cast<int64_t>(RawU64(field));
}

double Reader::F64(const char* field) {
  RequireTag(Tag::kF64, field);
  return DoubleFromBits(RawU64(field));
}

bool Reader::Bool(const char* field) {
  RequireTag(Tag::kBool, field);
  uint8_t v = static_cast<uint8_t>(*Need(1, field));
  if (v > 1) Fail(field, "bool byte must be 0 or 1, got " + std::to_string(v));
  return v != 0;
}

std::string Reader::String(const char* field) {
  RequireTag(Tag::kString, field);
  uint32_t len = LengthPrefix(field);
  return std::string(Need(len, field), len);
}

std::string Reader::Bytes(const char* field) {
  RequireTag(Tag::kBytes, field);
  uint32_t len = LengthPrefix(field);
  return std::string(Need(len, field), len);
}

std::vector<double> Reader::F64Array(const char* field) {
  RequireTag(Tag::kF64Array, field);
  size_t at = pos_;
  uint32_t count = RawU32(field);
  if (count > kMaxLengthPrefix / 8) {
    throw WireError(field, at,
                    "oversized length prefix: " + std::to_string(count) +
                        " doubles exceed cap");
  }
  if (pos_ + static_cast<size_t>(count) * 8 > Limit()) {
    throw WireError(field, at,
                    "oversized length prefix: " + std::to_string(count) +
                        " doubles declared, " + std::to_string(Limit() - pos_) +
                        " byte(s) remain");
  }
  std::vector<double> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    out.push_back(DoubleFromBits(RawU64(field)));
  }
  return out;
}

void Reader::BeginSection(const char* name) {
  RequireTag(Tag::kSection, name);
  uint32_t name_len = LengthPrefix(name);
  std::string got(Need(name_len, name), name_len);
  if (got != name) {
    Fail(name, "wrong section name: expected '" + std::string(name) +
                   "', found '" + got + "'");
  }
  uint32_t body = LengthPrefix(name);
  section_ends_.push_back(pos_ + body);
}

void Reader::EndSection(const char* name) {
  if (section_ends_.empty()) {
    Fail(name, "EndSection() without BeginSection()");
  }
  size_t end = section_ends_.back();
  if (pos_ != end) {
    Fail(name, "section has " + std::to_string(end - pos_) +
                   " trailing undecoded byte(s)");
  }
  section_ends_.pop_back();
}

uint32_t Reader::Count(const char* field, uint32_t max) {
  uint32_t n = U32(field);
  if (n > max) {
    Fail(field, "count " + std::to_string(n) + " exceeds cap " +
                    std::to_string(max));
  }
  // Every element costs at least one byte on the wire, so a count larger
  // than the bytes left in the innermost section is malformed no matter
  // what the elements are. Rejecting it here keeps a corrupted count from
  // driving a huge reserve() in the caller before the first element read
  // would fail anyway.
  const size_t remaining = Limit() - pos_;
  if (n > remaining) {
    Fail(field, "count " + std::to_string(n) + " exceeds the " +
                    std::to_string(remaining) + " byte(s) remaining");
  }
  return n;
}

void Reader::ExpectEnd(const char* what) const {
  size_t limit = Limit();
  if (pos_ != limit) {
    throw WireError(what, pos_,
                    std::to_string(limit - pos_) +
                        " trailing undecoded byte(s)");
  }
}

// -------------------------------------------------------------- envelope

std::string SealEnvelope(const std::string& body) {
  std::string out;
  out.reserve(body.size() + 12);
  AppendRawU32(&out, kMagic);
  AppendRawU32(&out, kFormatVersion);
  out.append(body);
  AppendRawU32(&out, Crc32(out));
  return out;
}

std::string OpenEnvelope(const std::string& bytes) {
  if (bytes.size() < 12) {
    throw WireError("envelope", bytes.size(),
                    "too short to be a ccd state blob (" +
                        std::to_string(bytes.size()) + " byte(s), need 12+)");
  }
  uint32_t magic = LoadRawU32(bytes.data());
  if (magic != kMagic) {
    throw WireError("envelope.magic", 0,
                    "bad magic 0x" + std::to_string(magic) +
                        ": not a ccd state blob");
  }
  uint32_t version = LoadRawU32(bytes.data() + 4);
  if (version != kFormatVersion) {
    throw WireError("envelope.version", 4,
                    "unsupported format version " + std::to_string(version) +
                        " (this build reads version " +
                        std::to_string(kFormatVersion) + ")");
  }
  uint32_t stored = LoadRawU32(bytes.data() + bytes.size() - 4);
  uint32_t computed = Crc32(bytes.data(), bytes.size() - 4);
  if (stored != computed) {
    throw WireError("envelope.crc32", bytes.size() - 4,
                    "checksum mismatch: stored " + std::to_string(stored) +
                        ", computed " + std::to_string(computed));
  }
  return bytes.substr(8, bytes.size() - 12);
}

}  // namespace io
}  // namespace ccd
