#ifndef CCD_IO_MONITOR_SERVICE_H_
#define CCD_IO_MONITOR_SERVICE_H_

#include <string>

#include "api/sharded_monitor.h"
#include "io/frame_server.h"

namespace ccd {
namespace io {

/// The command dialect a FrameServer speaks on behalf of an
/// api::ShardedMonitor — one request frame in, one response frame out.
/// Commands are space-separated text (doubles printed with %.17g, so
/// every value round-trips bit-exactly through the text form); the two
/// migration commands carry a binary state image after a '\n', which the
/// length-prefixed framing makes safe.
///
///   PREDICT <key> <f...>   (hash mode)   -> OK <shard> <id> <label> <s...>
///   PREDICT <f...>         (round-robin) -> OK <shard> <id> <label> <s...>
///   FEED <key> <y> <f...>  (hash mode)   -> OK
///   FEED <y> <f...>        (round-robin) -> OK
///   LABEL <shard> <id> <y>               -> OK applied | OK unknown
///   STATS                                -> OK position=... pending=...
///   RESULT                               -> OK pmauc=... pmgm=...
///   PERSIST [<dir>]                      -> OK <dir>
///   SHIP <shard>                         -> OK\n<state image bytes>
///   LOAD <shard>\n<state image bytes>    -> OK
///
/// Every failure — unknown command, malformed number, engine/API errors —
/// is caught and answered as "ERR <message>": a bad request must never
/// take down the serving process. Thread-safety is inherited from the
/// monitor (every ShardedMonitor method is), so one service can back all
/// of a FrameServer's concurrent connections.
class MonitorService {
 public:
  /// `monitor` must outlive the service. `default_persist_dir` is what a
  /// bare PERSIST writes to; empty means PERSIST requires the argument.
  explicit MonitorService(api::ShardedMonitor* monitor,
                          std::string default_persist_dir = "");

  /// Dispatches one request, never throws.
  std::string Handle(const std::string& request);

  /// Adapter for FrameServer's constructor.
  FrameServer::Handler Handler() {
    return [this](const std::string& request) { return Handle(request); };
  }

 private:
  std::string Dispatch(const std::string& request);

  api::ShardedMonitor* monitor_;
  std::string default_persist_dir_;
};

}  // namespace io
}  // namespace ccd

#endif  // CCD_IO_MONITOR_SERVICE_H_
