#include "runtime/thread_pool.h"

#include <exception>
#include <utility>

#include "runtime/sim.h"

namespace ccd {
namespace runtime {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  // sim::StartThread is std::thread's constructor outside a simulation;
  // inside one, workers are adopted as schedulable tasks so pool-based
  // code runs unmodified under the deterministic scheduler.
  for (int i = 0; i < threads; ++i) {
    workers_.push_back(sim::StartThread([this] { WorkerLoop(); }));
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stop_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) sim::JoinThread(w);
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (!queue_.empty() || in_flight_ != 0) all_done_.Wait(mutex_);
}

int ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!stop_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(int threads, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  ThreadPool pool(threads);
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, &errors, i] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.Wait();
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void RunThreads(int threads, const std::function<void(int)>& fn) {
  if (threads < 1) threads = 1;
  Mutex mutex;
  CondVar barrier;
  int ready = 0;
  bool go = false;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.push_back(sim::StartThread([&, t] {
      {
        MutexLock lock(&mutex);
        ++ready;
        barrier.NotifyAll();
        while (!go) barrier.Wait(mutex);
      }
      try {
        fn(t);
      } catch (...) {
        errors[static_cast<std::size_t>(t)] = std::current_exception();
      }
    }));
  }
  {
    MutexLock lock(&mutex);
    while (ready != threads) barrier.Wait(mutex);
    go = true;
    barrier.NotifyAll();
  }
  for (std::thread& worker : workers) sim::JoinThread(worker);
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace runtime
}  // namespace ccd
