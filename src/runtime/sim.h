#ifndef CCD_RUNTIME_SIM_H_
#define CCD_RUNTIME_SIM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/sim_hooks.h"

/// Deterministic simulation scheduler — the in-process Maelstrom/Elle
/// analogue for the serving layer.
///
/// A Scheduler runs N cooperative tasks (real OS threads, exactly one
/// runnable at any instant) and makes every scheduling decision from a
/// seeded splitmix64 stream. The schedule points are the operations on
/// the capability-annotated wrappers in runtime/sync.h: each Lock /
/// TryLock / CondVar::Wait yields to the scheduler before it can
/// complete, so Router, ShardedMonitor and ThreadPool explore a
/// different lock-interleaving per seed while running *unmodified* — the
/// shim (runtime/sim_hooks.h) keeps the exact annotated API, so the
/// -Wthread-safety and determinism-lint gates see the same code the
/// production build runs.
///
/// Determinism contract: for a fixed (seed, task program) the schedule
/// is bit-identical across runs, processes and platforms. No wall clock,
/// no std::hash, no address-dependent decisions — sync objects get dense
/// ids in first-touch order (itself schedule-determined), tasks get ids
/// in spawn order, and the trace digest hashes only those ids. Two runs
/// with the same seed produce the same digest() or something is broken.
///
/// Atomicity model: a task runs uninterrupted from one schedule point to
/// the next (the standard shared-access reduction — all cross-task state
/// in src/ is lock-guarded, so scheduling only at lock operations reaches
/// the same set of observable interleavings as preempting anywhere).
/// Consequence the test harness relies on: everything a task does after
/// its last lock *acquisition* — including releasing locks, returning,
/// and recording the result into a history — happens atomically, so a
/// recorded history is a true linearization of the run. std::atomic
/// counters (Router's round-robin cursor, ShardedMonitor's totals) are
/// not schedule points; their interleavings are commutative adds.
///
/// Virtual clock: advances one tick per scheduling decision, and jumps
/// forward when every live task is sleeping (SleepFor). There is no
/// relation to wall time; ticks exist so tests can model label delay and
/// stretched fault windows deterministically.
///
/// Threads: tasks declared with Spawn() before Run(). A task that
/// *creates* threads (ThreadPool, RunThreads) has them adopted as new
/// tasks automatically via the StartThread/JoinThread seam in
/// runtime/thread_pool.cc. Real sockets and fork() are not virtualized —
/// the io fault schedules drive those at the byte level instead (see
/// tests/sim_crash_test.cc).
///
/// Failure modes are first-class: if no task can run (lock cycle, lost
/// notify) the scheduler diagnoses the deadlock, aborts the remaining
/// tasks, and Run() throws SimDeadlockError naming who waits on what.
/// A task body that throws wins over the secondary deadlock its death
/// may cause: Run() rethrows the original exception.

namespace ccd {
namespace runtime {
namespace sim {

struct SchedulerImpl;  // defined in sim.cc

/// Thrown by Run() when no task is runnable and none is sleeping.
class SimDeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown *into* parked tasks while the scheduler tears a failed run
/// down; task runners swallow it. User code should not catch it.
class SimAborted : public std::exception {
 public:
  const char* what() const noexcept override { return "sim task aborted"; }
};

/// One recorded schedule event (only kept when Options::record_trace).
/// `object` is the dense first-touch id of the sync object, never an
/// address; `actor` is the task id. The digest hashes the same fields.
struct TraceEvent {
  uint64_t step = 0;
  uint64_t clock = 0;
  int actor = -1;
  int kind = 0;  // EventKind as int; see sim.cc
  uint32_t object = 0;
  uint64_t arg = 0;
};

struct SimOptions {
  /// Keep the full per-event trace (memory ~40 bytes/event). The rolling
  /// digest is always maintained; sweeps leave this off.
  bool record_trace = false;
};

class Scheduler {
 public:
  explicit Scheduler(uint64_t seed, SimOptions options = SimOptions());
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Declares a task. Only valid before Run().
  void Spawn(std::string name, std::function<void()> body);

  /// Runs every task to completion under the seeded schedule. Throws the
  /// first task-body exception (by task id) if any; SimDeadlockError if
  /// the tasks wedge. Single-shot: a Scheduler runs once.
  void Run();

  /// Rolling hash over every schedule event. Equal seeds (and equal task
  /// programs) must produce equal digests — the bit-identical-schedule
  /// acceptance check.
  uint64_t digest() const;

  /// Number of scheduling decisions taken.
  uint64_t steps() const;

  /// Virtual clock after the run.
  uint64_t now() const;

  /// Full event list; empty unless SimOptions::record_trace.
  const std::vector<TraceEvent>& trace() const;

 private:
  friend struct SimAccess;
  std::unique_ptr<SchedulerImpl> impl_;
};

/// --- In-task API (callable only from a task of a running Scheduler,
/// except where noted). ---

/// Pure schedule point: lets any other runnable task be chosen. No-op
/// outside a sim so shared fixtures can call it unconditionally.
void Yield();

/// Virtual-clock sleep: the task is not runnable for `ticks` decisions
/// (or until every other task sleeps and the clock jumps). Models label
/// delay / paused windows. Must be called from a sim task.
void SleepFor(uint64_t ticks);

/// Current virtual clock; 0 outside a sim.
uint64_t Now();

/// Deterministic draw from the scheduler's seeded stream: uniform in
/// [0, bound). bound must be > 0. Must be called from a sim task.
uint64_t Choice(uint64_t bound);

/// Deterministic biased coin. probability <= 0 returns false *without
/// drawing* (so a zero fault plane works outside a sim too);
/// probability >= 1 returns true without drawing.
bool Chance(double probability);

/// Thread seam used by runtime/thread_pool.cc: on a sim task, the new
/// thread is adopted as a schedulable task of the same Scheduler; outside
/// a sim this is exactly std::thread(body). JoinThread cooperatively
/// blocks the calling task until the adopted task finishes (plain join
/// for non-sim threads).
std::thread StartThread(std::function<void()> body);
void JoinThread(std::thread& thread);

}  // namespace sim
}  // namespace runtime
}  // namespace ccd

#endif  // CCD_RUNTIME_SIM_H_
