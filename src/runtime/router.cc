#include "runtime/router.h"

#include <stdexcept>
#include <string>

namespace ccd {
namespace runtime {

const char* RoutingModeName(RoutingMode mode) {
  switch (mode) {
    case RoutingMode::kHashKey:
      return "hash-key";
    case RoutingMode::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

Router::Router(int slots, RoutingMode mode)
    : slots_(slots < 1 ? 1 : slots), mode_(mode) {}

uint64_t Router::HashKey(uint64_t key) {
  // splitmix64 finalizer (Steele, Lea & Flood): a full-avalanche bijection
  // on 64-bit integers, so sequential ids spread uniformly over slots.
  uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int Router::KeySlot(uint64_t key, int slots) {
  if (slots < 1) {
    throw std::invalid_argument("Router::KeySlot: slots must be >= 1, got " +
                                std::to_string(slots));
  }
  return static_cast<int>(HashKey(key) % static_cast<uint64_t>(slots));
}

int Router::slots() const {
  ReaderLock lock(&table_mutex_);
  return slots_;
}

int Router::RouteKey(uint64_t key) const { return KeySlot(key, slots_); }

int Router::RouteNext() {
  if (mode_ != RoutingMode::kRoundRobin) {
    throw std::logic_error(
        "Router::RouteNext: router is in hash-key mode; route keyed "
        "traffic with RouteKey() so per-key ordering holds");
  }
  const uint64_t n = next_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(n % static_cast<uint64_t>(slots_));
}

void Router::RequireSlot(int slot) const {
  if (slot < 0 || slot >= slots_) {
    throw std::out_of_range("Router::RequireSlot: slot " +
                            std::to_string(slot) + " not in a table of " +
                            std::to_string(slots_) + " slots");
  }
}

int Router::AddSlot(const WriterLock& table) {
  if (table.mutex() != &table_mutex_) {
    throw std::logic_error(
        "Router::AddSlot: requires this router's own exclusive table lock");
  }
  return slots_++;
}

}  // namespace runtime
}  // namespace ccd
