#include "runtime/router.h"

#include <stdexcept>
#include <string>

namespace ccd {
namespace runtime {

const char* RoutingModeName(RoutingMode mode) {
  switch (mode) {
    case RoutingMode::kHashKey:
      return "hash-key";
    case RoutingMode::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

Router::Router(int slots, RoutingMode mode) : mode_(mode) {
  if (slots < 1) slots = 1;
  slot_mutexes_.reserve(static_cast<size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    slot_mutexes_.push_back(std::make_unique<std::mutex>());
  }
}

uint64_t Router::HashKey(uint64_t key) {
  // splitmix64 finalizer (Steele, Lea & Flood): a full-avalanche bijection
  // on 64-bit integers, so sequential ids spread uniformly over slots.
  uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int Router::KeySlot(uint64_t key, int slots) {
  if (slots < 1) {
    throw std::invalid_argument("Router::KeySlot: slots must be >= 1, got " +
                                std::to_string(slots));
  }
  return static_cast<int>(HashKey(key) % static_cast<uint64_t>(slots));
}

int Router::slots() const {
  std::shared_lock<std::shared_mutex> lock(table_mutex_);
  return static_cast<int>(slot_mutexes_.size());
}

Router::Guard Router::AcquireKey(uint64_t key) {
  Guard guard;
  guard.table = std::shared_lock<std::shared_mutex>(table_mutex_);
  guard.slot = KeySlot(key, static_cast<int>(slot_mutexes_.size()));
  guard.slot_lock =
      std::unique_lock<std::mutex>(*slot_mutexes_[static_cast<size_t>(guard.slot)]);
  return guard;
}

Router::Guard Router::AcquireNext() {
  if (mode_ != RoutingMode::kRoundRobin) {
    throw std::logic_error(
        "Router::AcquireNext: router is in hash-key mode; route keyed "
        "traffic with AcquireKey() so per-key ordering holds");
  }
  Guard guard;
  guard.table = std::shared_lock<std::shared_mutex>(table_mutex_);
  const uint64_t n = next_.fetch_add(1, std::memory_order_relaxed);
  guard.slot = static_cast<int>(n % slot_mutexes_.size());
  guard.slot_lock =
      std::unique_lock<std::mutex>(*slot_mutexes_[static_cast<size_t>(guard.slot)]);
  return guard;
}

Router::Guard Router::AcquireSlot(int slot) {
  Guard guard;
  guard.table = std::shared_lock<std::shared_mutex>(table_mutex_);
  if (slot < 0 || static_cast<size_t>(slot) >= slot_mutexes_.size()) {
    throw std::out_of_range("Router::AcquireSlot: slot " +
                            std::to_string(slot) + " not in a table of " +
                            std::to_string(slot_mutexes_.size()) + " slots");
  }
  guard.slot = slot;
  guard.slot_lock =
      std::unique_lock<std::mutex>(*slot_mutexes_[static_cast<size_t>(slot)]);
  return guard;
}

Router::Exclusive Router::LockTable() {
  Exclusive exclusive;
  exclusive.table = std::unique_lock<std::shared_mutex>(table_mutex_);
  return exclusive;
}

int Router::AddSlot(const Exclusive& exclusive) {
  if (!exclusive.table.owns_lock() ||
      exclusive.table.mutex() != &table_mutex_) {
    throw std::logic_error(
        "Router::AddSlot: requires this router's own exclusive table lock");
  }
  slot_mutexes_.push_back(std::make_unique<std::mutex>());
  return static_cast<int>(slot_mutexes_.size()) - 1;
}

}  // namespace runtime
}  // namespace ccd
