#include "runtime/sim.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

/// Implementation notes.
///
/// One mutex (Impl::mu) guards the entire scheduler. Tasks are real OS
/// threads, but exactly one holds the "running" token at a time; every
/// context switch is a condition-variable handoff under Impl::mu, which
/// also gives TSan the happens-before edges it needs to verify the
/// serialized execution it is watching.
///
/// Raw std::mutex / std::condition_variable are deliberate here (see the
/// justified allowlist entry in tools/lint_determinism.py): the scheduler
/// *implements* the schedule-controlling layer beneath runtime/sync.h, so
/// routing its own synchronization through the wrappers it intercepts
/// would recurse. Nothing in this file reads a clock, an address, or any
/// other ambient nondeterminism into a scheduling decision: the only
/// decision inputs are the seed stream, spawn order, and dense
/// first-touch object ids.
///
/// Teardown of a failed run (deadlock or a task body throwing while
/// holding locks) resumes the surviving tasks one at a time in id order
/// with `aborting` set; each parked task then throws SimAborted out of
/// its blocking call and unwinds. During that unwinding, lock operations
/// reached from destructors degrade to tolerant no-ops (one task runs at
/// a time, so mutual exclusion is moot) — this keeps ThreadPool and
/// MutexLock destructors from terminating the process mid-teardown.

namespace ccd {
namespace runtime {
namespace sim {

namespace {

uint64_t Splitmix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

enum class EventKind : int {
  kSchedule = 1,
  kMutexAcquire,
  kMutexRelease,
  kMutexTryFail,
  kSharedAcquire,
  kSharedRelease,
  kReaderAcquire,
  kReaderRelease,
  kCvWait,
  kCvNotifyOne,
  kCvNotifyAll,
  kSleep,
  kClockJump,
  kChoice,
  kThreadAdopted,
  kTaskDone,
  kYield,
};

enum class TaskState { kReady, kRunning, kBlocked, kSleeping, kDone };
enum class BlockKind { kNone, kMutex, kSharedWriter, kSharedReader, kCondVar, kJoin };

struct Task {
  int id = -1;
  std::string name;
  std::function<void()> body;
  std::thread thread;  // spawned tasks only; adopted threads are owned
                       // by their creator (e.g. ThreadPool::workers_).
  TaskState state = TaskState::kReady;
  BlockKind block = BlockKind::kNone;
  uint32_t wait_object = 0;  // dense id of the object blocked on
  int join_target = -1;
  uint64_t wake_at = 0;  // valid while kSleeping
  bool resume = false;
  std::condition_variable cv;
  std::exception_ptr error;
};

struct MutexState {
  int owner = -1;
  std::vector<int> waiters;
};

struct SharedState {
  int writer = -1;
  std::vector<int> readers;
  std::vector<int> writer_waiters;
  std::vector<int> reader_waiters;
};

struct CvWaiter {
  int task;
  void* mutex;
};

struct CvState {
  std::vector<CvWaiter> waiters;
};

}  // namespace

struct SchedulerImpl {
  std::mutex mu;
  std::condition_variable main_cv;  // Run()/abort-loop coordination

  std::vector<std::unique_ptr<Task>> tasks;
  std::map<std::thread::id, int> adopted;  // OS thread id -> task id

  std::map<const void*, MutexState> mutexes;
  std::map<const void*, SharedState> shared;
  std::map<const void*, CvState> condvars;
  std::map<const void*, uint32_t> object_ids;  // dense, first-touch order
  uint32_t next_object_id = 1;

  uint64_t rng_state = 0;
  uint64_t clock = 0;
  uint64_t steps = 0;
  uint64_t digest = 0xcbf29ce484222325ull;  // FNV offset basis
  // Backstop against livelocked schedules (a retry loop that never makes
  // progress would otherwise hang CI silently). Hitting it is reported
  // like a deadlock, with diagnostics.
  uint64_t max_steps = 20u * 1000u * 1000u;

  bool record_trace = false;
  std::vector<TraceEvent> trace;

  int running = -1;
  bool started = false;
  bool finished = false;
  bool deadlock = false;
  bool aborting = false;
  std::string deadlock_diag;
};

struct SimAccess {
  static SchedulerImpl& Get(Scheduler& s) { return *s.impl_; }
};

namespace {

thread_local Scheduler* tls_scheduler = nullptr;
thread_local Task* tls_task = nullptr;

using Impl = SchedulerImpl;
using Lock = std::unique_lock<std::mutex>;

uint64_t NextRand(Impl& impl) {
  impl.rng_state += 0x9e3779b97f4a7c15ull;
  uint64_t z = impl.rng_state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint32_t ObjectId(Impl& impl, const void* object) {
  auto it = impl.object_ids.find(object);
  if (it != impl.object_ids.end()) return it->second;
  uint32_t id = impl.next_object_id++;
  impl.object_ids.emplace(object, id);
  return id;
}

void Record(Impl& impl, EventKind kind, uint32_t object, uint64_t arg) {
  uint64_t h = impl.digest;
  h = Splitmix64(h ^ impl.steps);
  h = Splitmix64(h ^ impl.clock);
  h = Splitmix64(h ^ static_cast<uint64_t>(static_cast<int64_t>(impl.running)));
  h = Splitmix64(h ^ static_cast<uint64_t>(kind));
  h = Splitmix64(h ^ object);
  h = Splitmix64(h ^ arg);
  impl.digest = h;
  if (impl.record_trace) {
    TraceEvent e;
    e.step = impl.steps;
    e.clock = impl.clock;
    e.actor = impl.running;
    e.kind = static_cast<int>(kind);
    e.object = object;
    e.arg = arg;
    impl.trace.push_back(e);
  }
}

bool AllDoneLocked(const Impl& impl) {
  for (const auto& t : impl.tasks) {
    if (t->state != TaskState::kDone) return false;
  }
  return true;
}

const char* BlockName(BlockKind kind) {
  switch (kind) {
    case BlockKind::kNone: return "nothing";
    case BlockKind::kMutex: return "mutex";
    case BlockKind::kSharedWriter: return "shared-mutex (writer)";
    case BlockKind::kSharedReader: return "shared-mutex (reader)";
    case BlockKind::kCondVar: return "condvar";
    case BlockKind::kJoin: return "thread join";
  }
  return "?";
}

std::string BuildDiagnosticLocked(const Impl& impl, const char* cause) {
  std::ostringstream os;
  os << "sim: " << cause << " at step " << impl.steps << ", clock "
     << impl.clock << "\n";
  for (const auto& t : impl.tasks) {
    os << "  task " << t->id << " (" << t->name << "): ";
    switch (t->state) {
      case TaskState::kDone: os << "done"; break;
      case TaskState::kReady: os << "ready"; break;
      case TaskState::kRunning: os << "running"; break;
      case TaskState::kSleeping: os << "sleeping until " << t->wake_at; break;
      case TaskState::kBlocked:
        os << "blocked on " << BlockName(t->block);
        if (t->block == BlockKind::kJoin) {
          os << " of task " << t->join_target;
        } else {
          os << " #" << t->wait_object;
        }
        break;
    }
    // Held locks, by dense object id (addresses stay out of diagnostics).
    std::vector<std::pair<uint32_t, const char*>> held;
    for (const auto& m : impl.mutexes) {
      if (m.second.owner == t->id) {
        held.emplace_back(impl.object_ids.at(m.first), "mutex");
      }
    }
    for (const auto& s : impl.shared) {
      if (s.second.writer == t->id) {
        held.emplace_back(impl.object_ids.at(s.first), "shared-mutex(w)");
      } else if (std::find(s.second.readers.begin(), s.second.readers.end(),
                           t->id) != s.second.readers.end()) {
        held.emplace_back(impl.object_ids.at(s.first), "shared-mutex(r)");
      }
    }
    std::sort(held.begin(), held.end());
    for (const auto& h : held) os << "; holds " << h.second << " #" << h.first;
    os << "\n";
  }
  return os.str();
}

void DispatchLocked(Impl& impl, int id) {
  Task& t = *impl.tasks[static_cast<size_t>(id)];
  t.state = TaskState::kRunning;
  t.block = BlockKind::kNone;
  impl.running = id;
  impl.steps += 1;
  Record(impl, EventKind::kSchedule, 0, static_cast<uint64_t>(id));
  t.resume = true;
  t.cv.notify_one();
}

int PickNextLocked(Impl& impl) {
  std::vector<int> ready;
  ready.reserve(impl.tasks.size());
  for (const auto& t : impl.tasks) {
    if (t->state == TaskState::kReady ||
        (t->state == TaskState::kSleeping && t->wake_at <= impl.clock)) {
      ready.push_back(t->id);
    }
  }
  if (ready.empty()) {
    // Everyone is blocked or sleeping: jump the virtual clock to the
    // earliest wake-up, if there is one.
    uint64_t min_wake = ~0ull;
    for (const auto& t : impl.tasks) {
      if (t->state == TaskState::kSleeping) {
        min_wake = std::min(min_wake, t->wake_at);
      }
    }
    if (min_wake != ~0ull) {
      impl.clock = min_wake;
      Record(impl, EventKind::kClockJump, 0, min_wake);
      for (const auto& t : impl.tasks) {
        if (t->state == TaskState::kSleeping && t->wake_at <= impl.clock) {
          ready.push_back(t->id);
        }
      }
    }
  }
  if (ready.empty()) return -1;
  impl.clock += 1;
  return ready[static_cast<size_t>(NextRand(impl) %
                                   static_cast<uint64_t>(ready.size()))];
}

/// Picks and wakes the next task; flags a deadlock (and wakes the Run()
/// thread to start teardown) when nobody can make progress.
void ScheduleNextLocked(Impl& impl) {
  impl.running = -1;
  if (impl.aborting || impl.deadlock) {
    impl.main_cv.notify_all();
    return;
  }
  if (impl.steps >= impl.max_steps) {
    impl.deadlock = true;
    impl.deadlock_diag = BuildDiagnosticLocked(
        impl, "step limit exceeded (livelocked schedule?)");
    impl.main_cv.notify_all();
    return;
  }
  int next = PickNextLocked(impl);
  if (next >= 0) {
    DispatchLocked(impl, next);
    return;
  }
  if (AllDoneLocked(impl)) {
    impl.main_cv.notify_all();
    return;
  }
  impl.deadlock = true;
  impl.deadlock_diag = BuildDiagnosticLocked(impl, "deadlock");
  impl.main_cv.notify_all();
}

/// Parks the calling task in `new_state` and hands the token to the
/// scheduler. Returns once this task is dispatched again.
void SwitchOut(Lock& lk, Impl& impl, Task& self, TaskState new_state) {
  self.state = new_state;
  if (impl.aborting) {
    impl.main_cv.notify_all();
  } else {
    ScheduleNextLocked(impl);
  }
  while (!self.resume) self.cv.wait(lk);
  self.resume = false;
}

/// After a resume: true means "bail out of the calling hook quietly"
/// (teardown is running and we are inside a destructor's unwinding);
/// throwing SimAborted is the normal teardown path for live task code.
bool AbortEscape(Impl& impl) {
  if (!impl.aborting) return false;
  if (std::uncaught_exceptions() > 0) return true;
  throw SimAborted();
}

Impl& CurrentImpl() {
  return SimAccess::Get(*tls_scheduler);
}

Task& CurrentTask() { return *tls_task; }

void WakeJoinersLocked(Impl& impl, int finished_id) {
  for (const auto& t : impl.tasks) {
    if (t->state == TaskState::kBlocked && t->block == BlockKind::kJoin &&
        t->join_target == finished_id) {
      t->state = TaskState::kReady;
      t->block = BlockKind::kNone;
    }
  }
}

/// Common runner for spawned and adopted tasks: park until first
/// dispatch, run the body, mark done, hand the token on.
void RunTaskBody(Scheduler* scheduler, Impl& impl, Task* task) {
  Lock lk(impl.mu);
  tls_scheduler = scheduler;
  tls_task = task;
  while (!task->resume) task->cv.wait(lk);
  task->resume = false;
  if (!impl.aborting) {
    lk.unlock();
    std::exception_ptr error;
    try {
      task->body();
    } catch (const SimAborted&) {
      // Normal teardown of a failed run; not this task's error.
    } catch (...) {
      error = std::current_exception();
    }
    lk.lock();
    task->error = error;
  }
  task->state = TaskState::kDone;
  task->body = nullptr;
  Record(impl, EventKind::kTaskDone, 0, static_cast<uint64_t>(task->id));
  WakeJoinersLocked(impl, task->id);
  if (impl.aborting) {
    impl.main_cv.notify_all();
  } else {
    ScheduleNextLocked(impl);
  }
}

/// Teardown after a deadlock or task-body exception: resume survivors
/// one at a time (id order) so each can throw SimAborted and unwind.
void AbortLocked(Impl& impl, Lock& lk) {
  impl.aborting = true;
  uint64_t rounds = 0;
  const uint64_t round_cap =
      1000u * (impl.tasks.size() + 1) * (impl.tasks.size() + 1);
  while (!AllDoneLocked(impl)) {
    Task* pick = nullptr;
    for (const auto& t : impl.tasks) {
      if (t->state == TaskState::kDone || t->state == TaskState::kRunning) {
        continue;
      }
      if (t->state == TaskState::kBlocked && t->block == BlockKind::kJoin) {
        const Task& target = *impl.tasks[static_cast<size_t>(t->join_target)];
        if (target.state != TaskState::kDone) continue;
      }
      pick = t.get();
      break;
    }
    if (pick == nullptr) {
      // Only unfinished joins of unfinished tasks remain — a join cycle,
      // which the seam cannot produce. Joining is impossible now, so
      // surface the wedged teardown loudly rather than hang.
      std::fprintf(stderr, "%s",
                   BuildDiagnosticLocked(impl, "wedged teardown").c_str());
      std::abort();
    }
    if (++rounds > round_cap) {
      std::fprintf(stderr, "%s",
                   BuildDiagnosticLocked(impl, "teardown did not converge")
                       .c_str());
      std::abort();
    }
    pick->state = TaskState::kRunning;
    impl.running = pick->id;
    pick->resume = true;
    pick->cv.notify_one();
    Task* picked = pick;
    impl.main_cv.wait(lk, [picked] {
      return picked->state != TaskState::kRunning;
    });
  }
}

}  // namespace

Scheduler::Scheduler(uint64_t seed, SimOptions options)
    : impl_(new Impl()) {
  impl_->rng_state = Splitmix64(seed ^ 0x5ca1ab1e0ddba11ull);
  impl_->record_trace = options.record_trace;
}

Scheduler::~Scheduler() {
  // Run() joins every spawned thread before returning (normally or by
  // throw); a never-run Scheduler has no threads. Nothing to do.
}

void Scheduler::Spawn(std::string name, std::function<void()> body) {
  Impl& impl = *impl_;
  Lock lk(impl.mu);
  if (impl.started) {
    throw std::logic_error("sim: Spawn after Run (declare tasks up front)");
  }
  auto task = std::unique_ptr<Task>(new Task());
  task->id = static_cast<int>(impl.tasks.size());
  task->name = std::move(name);
  task->body = std::move(body);
  impl.tasks.push_back(std::move(task));
}

void Scheduler::Run() {
  Impl& impl = *impl_;
  std::exception_ptr task_error;
  {
    Lock lk(impl.mu);
    if (impl.started) throw std::logic_error("sim: Run is single-shot");
    impl.started = true;
    if (impl.tasks.empty()) {
      impl.finished = true;
      return;
    }
    const size_t spawned = impl.tasks.size();
    for (size_t i = 0; i < spawned; ++i) {
      Task* task = impl.tasks[i].get();
      task->thread =
          std::thread([this, &impl, task] { RunTaskBody(this, impl, task); });
    }
    ScheduleNextLocked(impl);
    impl.main_cv.wait(lk, [&impl] {
      return AllDoneLocked(impl) || impl.deadlock;
    });
    if (!AllDoneLocked(impl)) AbortLocked(impl, lk);
  }
  for (const auto& t : impl.tasks) {
    if (t->thread.joinable()) t->thread.join();
  }
  {
    Lock lk(impl.mu);
    impl.finished = true;
    for (const auto& t : impl.tasks) {
      if (t->error) {
        task_error = t->error;
        break;
      }
    }
  }
  if (task_error) std::rethrow_exception(task_error);
  if (impl.deadlock) throw SimDeadlockError(impl.deadlock_diag);
}

uint64_t Scheduler::digest() const { return impl_->digest; }
uint64_t Scheduler::steps() const { return impl_->steps; }
uint64_t Scheduler::now() const { return impl_->clock; }
const std::vector<TraceEvent>& Scheduler::trace() const {
  return impl_->trace;
}

bool SimActive() noexcept { return tls_scheduler != nullptr; }

void SimMutexLock(void* mu) {
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  if (AbortEscape(impl)) return;
  const uint32_t obj = ObjectId(impl, mu);
  // Schedule point before every acquisition, contended or not: who gets
  // the lock next is exactly the decision the sweep explores.
  SwitchOut(lk, impl, self, TaskState::kReady);
  if (AbortEscape(impl)) return;
  MutexState& m = impl.mutexes[mu];
  while (m.owner != -1) {
    if (m.owner == self.id) {
      throw std::logic_error("sim: recursive lock of a runtime::Mutex");
    }
    m.waiters.push_back(self.id);
    self.block = BlockKind::kMutex;
    self.wait_object = obj;
    SwitchOut(lk, impl, self, TaskState::kBlocked);
    if (AbortEscape(impl)) return;
  }
  m.owner = self.id;
  Record(impl, EventKind::kMutexAcquire, obj, 0);
}

bool SimMutexTryLock(void* mu) {
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  if (AbortEscape(impl)) return true;
  const uint32_t obj = ObjectId(impl, mu);
  SwitchOut(lk, impl, self, TaskState::kReady);
  if (AbortEscape(impl)) return true;
  MutexState& m = impl.mutexes[mu];
  if (m.owner != -1) {
    Record(impl, EventKind::kMutexTryFail, obj, 0);
    return false;
  }
  m.owner = self.id;
  Record(impl, EventKind::kMutexAcquire, obj, 0);
  return true;
}

void SimMutexUnlock(void* mu) {
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  if (impl.aborting) {
    auto it = impl.mutexes.find(mu);
    if (it != impl.mutexes.end() && it->second.owner == self.id) {
      it->second.owner = -1;
    }
    return;
  }
  auto it = impl.mutexes.find(mu);
  if (it == impl.mutexes.end() || it->second.owner != self.id) {
    throw std::logic_error("sim: unlock of a runtime::Mutex not held");
  }
  it->second.owner = -1;
  Record(impl, EventKind::kMutexRelease, ObjectId(impl, mu), 0);
  // Wake every waiter to re-contend; the scheduler picks the winner.
  for (int w : it->second.waiters) {
    Task& t = *impl.tasks[static_cast<size_t>(w)];
    t.state = TaskState::kReady;
    t.block = BlockKind::kNone;
  }
  it->second.waiters.clear();
  // No switch-out: a task runs atomically from one acquisition to the
  // next (see the reduction argument in sim.h).
}

void SimSharedLock(void* mu) {
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  if (AbortEscape(impl)) return;
  const uint32_t obj = ObjectId(impl, mu);
  SwitchOut(lk, impl, self, TaskState::kReady);
  if (AbortEscape(impl)) return;
  SharedState& s = impl.shared[mu];
  while (s.writer != -1 || !s.readers.empty()) {
    if (s.writer == self.id) {
      throw std::logic_error("sim: recursive lock of a runtime::SharedMutex");
    }
    s.writer_waiters.push_back(self.id);
    self.block = BlockKind::kSharedWriter;
    self.wait_object = obj;
    SwitchOut(lk, impl, self, TaskState::kBlocked);
    if (AbortEscape(impl)) return;
  }
  s.writer = self.id;
  Record(impl, EventKind::kSharedAcquire, obj, 0);
}

void SimSharedUnlock(void* mu) {
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  auto it = impl.shared.find(mu);
  if (impl.aborting) {
    if (it != impl.shared.end() && it->second.writer == self.id) {
      it->second.writer = -1;
    }
    return;
  }
  if (it == impl.shared.end() || it->second.writer != self.id) {
    throw std::logic_error(
        "sim: exclusive unlock of a runtime::SharedMutex not write-held");
  }
  SharedState& s = it->second;
  s.writer = -1;
  Record(impl, EventKind::kSharedRelease, ObjectId(impl, mu), 0);
  for (int w : s.writer_waiters) {
    Task& t = *impl.tasks[static_cast<size_t>(w)];
    t.state = TaskState::kReady;
    t.block = BlockKind::kNone;
  }
  s.writer_waiters.clear();
  for (int w : s.reader_waiters) {
    Task& t = *impl.tasks[static_cast<size_t>(w)];
    t.state = TaskState::kReady;
    t.block = BlockKind::kNone;
  }
  s.reader_waiters.clear();
}

void SimSharedLockShared(void* mu) {
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  if (AbortEscape(impl)) return;
  const uint32_t obj = ObjectId(impl, mu);
  SwitchOut(lk, impl, self, TaskState::kReady);
  if (AbortEscape(impl)) return;
  SharedState& s = impl.shared[mu];
  while (s.writer != -1) {
    s.reader_waiters.push_back(self.id);
    self.block = BlockKind::kSharedReader;
    self.wait_object = obj;
    SwitchOut(lk, impl, self, TaskState::kBlocked);
    if (AbortEscape(impl)) return;
  }
  s.readers.push_back(self.id);
  Record(impl, EventKind::kReaderAcquire, obj, 0);
}

void SimSharedUnlockShared(void* mu) {
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  auto it = impl.shared.find(mu);
  if (impl.aborting) {
    if (it != impl.shared.end()) {
      auto& readers = it->second.readers;
      auto pos = std::find(readers.begin(), readers.end(), self.id);
      if (pos != readers.end()) readers.erase(pos);
    }
    return;
  }
  if (it == impl.shared.end()) {
    throw std::logic_error(
        "sim: shared unlock of a runtime::SharedMutex never locked");
  }
  SharedState& s = it->second;
  auto pos = std::find(s.readers.begin(), s.readers.end(), self.id);
  if (pos == s.readers.end()) {
    throw std::logic_error(
        "sim: shared unlock of a runtime::SharedMutex not read-held");
  }
  s.readers.erase(pos);
  Record(impl, EventKind::kReaderRelease, ObjectId(impl, mu), 0);
  if (s.readers.empty()) {
    for (int w : s.writer_waiters) {
      Task& t = *impl.tasks[static_cast<size_t>(w)];
      t.state = TaskState::kReady;
      t.block = BlockKind::kNone;
    }
    s.writer_waiters.clear();
  }
}

void SimCondVarWait(void* cv, void* mu) {
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  if (AbortEscape(impl)) return;
  const uint32_t obj = ObjectId(impl, cv);
  auto mit = impl.mutexes.find(mu);
  if (mit == impl.mutexes.end() || mit->second.owner != self.id) {
    throw std::logic_error("sim: CondVar::Wait without holding the mutex");
  }
  // Atomically: release the mutex, park on the condvar.
  mit->second.owner = -1;
  Record(impl, EventKind::kMutexRelease, ObjectId(impl, mu), 0);
  for (int w : mit->second.waiters) {
    Task& t = *impl.tasks[static_cast<size_t>(w)];
    t.state = TaskState::kReady;
    t.block = BlockKind::kNone;
  }
  mit->second.waiters.clear();
  impl.condvars[cv].waiters.push_back(CvWaiter{self.id, mu});
  self.block = BlockKind::kCondVar;
  self.wait_object = obj;
  Record(impl, EventKind::kCvWait, obj, 0);
  SwitchOut(lk, impl, self, TaskState::kBlocked);
  if (AbortEscape(impl)) return;
  // Notified: reacquire the mutex before returning.
  MutexState& m = impl.mutexes[mu];
  while (m.owner != -1) {
    m.waiters.push_back(self.id);
    self.block = BlockKind::kMutex;
    self.wait_object = ObjectId(impl, mu);
    SwitchOut(lk, impl, self, TaskState::kBlocked);
    if (AbortEscape(impl)) return;
  }
  m.owner = self.id;
  Record(impl, EventKind::kMutexAcquire, ObjectId(impl, mu), 0);
}

void SimCondVarNotifyOne(void* cv) {
  Impl& impl = CurrentImpl();
  Lock lk(impl.mu);
  if (impl.aborting) return;
  const uint32_t obj = ObjectId(impl, cv);
  auto it = impl.condvars.find(cv);
  if (it == impl.condvars.end() || it->second.waiters.empty()) {
    Record(impl, EventKind::kCvNotifyOne, obj, 0);
    return;
  }
  // Which waiter wakes is a scheduling decision: draw it.
  auto& waiters = it->second.waiters;
  const size_t idx = static_cast<size_t>(
      NextRand(impl) % static_cast<uint64_t>(waiters.size()));
  const CvWaiter woken = waiters[idx];
  waiters.erase(waiters.begin() + static_cast<std::ptrdiff_t>(idx));
  Task& t = *impl.tasks[static_cast<size_t>(woken.task)];
  t.state = TaskState::kReady;
  t.block = BlockKind::kNone;
  Record(impl, EventKind::kCvNotifyOne, obj,
         static_cast<uint64_t>(woken.task) + 1);
}

void SimCondVarNotifyAll(void* cv) {
  Impl& impl = CurrentImpl();
  Lock lk(impl.mu);
  if (impl.aborting) return;
  const uint32_t obj = ObjectId(impl, cv);
  auto it = impl.condvars.find(cv);
  uint64_t woken = 0;
  if (it != impl.condvars.end()) {
    for (const CvWaiter& w : it->second.waiters) {
      Task& t = *impl.tasks[static_cast<size_t>(w.task)];
      t.state = TaskState::kReady;
      t.block = BlockKind::kNone;
      ++woken;
    }
    it->second.waiters.clear();
  }
  Record(impl, EventKind::kCvNotifyAll, obj, woken);
}

void Yield() {
  if (!SimActive()) return;
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  if (AbortEscape(impl)) return;
  Record(impl, EventKind::kYield, 0, 0);
  SwitchOut(lk, impl, self, TaskState::kReady);
  if (AbortEscape(impl)) return;
}

void SleepFor(uint64_t ticks) {
  if (!SimActive()) {
    throw std::logic_error("sim: SleepFor outside a simulation task");
  }
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  Lock lk(impl.mu);
  if (AbortEscape(impl)) return;
  self.wake_at = impl.clock + ticks;
  Record(impl, EventKind::kSleep, 0, ticks);
  SwitchOut(lk, impl, self, TaskState::kSleeping);
  if (AbortEscape(impl)) return;
}

uint64_t Now() {
  if (!SimActive()) return 0;
  Impl& impl = CurrentImpl();
  Lock lk(impl.mu);
  return impl.clock;
}

uint64_t Choice(uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("sim: Choice bound must be > 0");
  if (!SimActive()) {
    throw std::logic_error("sim: Choice outside a simulation task");
  }
  Impl& impl = CurrentImpl();
  Lock lk(impl.mu);
  const uint64_t value = NextRand(impl) % bound;
  Record(impl, EventKind::kChoice, 0, value);
  return value;
}

bool Chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  // 53-bit draw → uniform double in [0, 1).
  const uint64_t draw = Choice(1ull << 53);
  return static_cast<double>(draw) <
         probability * static_cast<double>(1ull << 53);
}

std::thread StartThread(std::function<void()> body) {
  if (!SimActive()) return std::thread(std::move(body));
  Scheduler* scheduler = tls_scheduler;
  Impl& impl = CurrentImpl();
  Lock lk(impl.mu);
  auto task = std::unique_ptr<Task>(new Task());
  Task* t = task.get();
  t->id = static_cast<int>(impl.tasks.size());
  t->name = "adopted-" + std::to_string(t->id);
  t->body = std::move(body);
  impl.tasks.push_back(std::move(task));
  Record(impl, EventKind::kThreadAdopted, 0, static_cast<uint64_t>(t->id));
  // The OS thread parks as a kReady task until the scheduler picks it;
  // the creating task keeps the token and continues.
  std::thread os_thread(
      [scheduler, &impl, t] { RunTaskBody(scheduler, impl, t); });
  impl.adopted.emplace(os_thread.get_id(), t->id);
  return os_thread;
}

void JoinThread(std::thread& thread) {
  if (!SimActive()) {
    thread.join();
    return;
  }
  Impl& impl = CurrentImpl();
  Task& self = CurrentTask();
  {
    Lock lk(impl.mu);
    auto it = impl.adopted.find(thread.get_id());
    if (it == impl.adopted.end()) {
      // Not one of ours (created before the sim started): a real join
      // would wedge the scheduler only if that thread needed scheduling,
      // which a pre-sim thread by construction does not.
      lk.unlock();
      thread.join();
      return;
    }
    const int target_id = it->second;
    while (impl.tasks[static_cast<size_t>(target_id)]->state !=
           TaskState::kDone) {
      self.block = BlockKind::kJoin;
      self.join_target = target_id;
      SwitchOut(lk, impl, self, TaskState::kBlocked);
      self.join_target = -1;
      if (impl.aborting &&
          impl.tasks[static_cast<size_t>(target_id)]->state ==
              TaskState::kDone) {
        break;
      }
    }
  }
  // The adopted task has finished; its OS thread exits imminently.
  thread.join();
}

}  // namespace sim
}  // namespace runtime
}  // namespace ccd
