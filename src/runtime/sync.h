#ifndef CCD_RUNTIME_SYNC_H_
#define CCD_RUNTIME_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "runtime/sim_hooks.h"

/// Capability-annotated synchronization primitives — the only lock types
/// src/ is allowed to use (tools/lint_determinism.py enforces the ban on
/// raw std::mutex outside this header).
///
/// Under clang, the CCD_* macros expand to Thread Safety Analysis
/// attributes, so lock discipline becomes a *compile-time* property:
/// reading a CCD_GUARDED_BY field without holding its mutex, or calling a
/// CCD_REQUIRES function without the capability, is a -Wthread-safety
/// error (CI builds the tree with clang and -Werror; see
/// tests/negative_compile/ for the proofs that violations are rejected).
/// Under gcc — the local toolchain — every macro degrades to a no-op and
/// the wrappers are zero-cost veneers over the std primitives, so the
/// annotated tree builds everywhere and TSan still checks the dynamic
/// side.
///
/// What the analysis can and cannot see here:
///  * It is purely syntactic. A capability is an *expression*
///    (`mu`, `s.mu`, `router_.TableMutex()`), so dynamically-indexed locks
///    (`mutexes[i]`) are invisible to it. The concurrency layer is shaped
///    around that limit: a shard's mutex lives in the same struct as the
///    state it guards, and call sites bind `Shard& s = *shards_[i]` once
///    so the lock and the guarded access share the base expression `s`.
///  * Locks handed through type-erased boundaries (std::function callbacks)
///    are likewise invisible — MonitorEngine's hook-reentrancy invariant
///    stays a runtime check (see eval/engine.cc HookScope).
///
/// Simulation seam: every operation first asks sim::SimActive() — on a
/// thread owned by a running sim::Scheduler (runtime/sim.h) the operation
/// routes to the deterministic cooperative scheduler instead of the std
/// primitive, which is how the fault-injection harness explores lock
/// interleavings seed-by-seed without touching any call site. On every
/// other thread this is one thread-local read and a fall-through. The
/// capability annotations are identical on both paths, so the analysis
/// and the negative-compile proofs are unaffected.

// Base wrapper: expands to the TSA attribute under clang, vanishes
// elsewhere. The argument is an attribute spelling, not an expression, so
// it cannot be parenthesized. NOLINT(bugprone-macro-parentheses)
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CCD_TSA(x) __attribute__((x))  // NOLINT(bugprone-macro-parentheses)
#endif
#endif
#ifndef CCD_TSA
#define CCD_TSA(x)
#endif

#define CCD_CAPABILITY(name) CCD_TSA(capability(name))
#define CCD_SCOPED_CAPABILITY CCD_TSA(scoped_lockable)
#define CCD_GUARDED_BY(x) CCD_TSA(guarded_by(x))
#define CCD_PT_GUARDED_BY(x) CCD_TSA(pt_guarded_by(x))
#define CCD_REQUIRES(...) CCD_TSA(requires_capability(__VA_ARGS__))
#define CCD_REQUIRES_SHARED(...) \
  CCD_TSA(requires_shared_capability(__VA_ARGS__))
#define CCD_ACQUIRE(...) CCD_TSA(acquire_capability(__VA_ARGS__))
#define CCD_ACQUIRE_SHARED(...) CCD_TSA(acquire_shared_capability(__VA_ARGS__))
#define CCD_RELEASE(...) CCD_TSA(release_capability(__VA_ARGS__))
#define CCD_RELEASE_SHARED(...) CCD_TSA(release_shared_capability(__VA_ARGS__))
#define CCD_RELEASE_GENERIC(...) CCD_TSA(release_generic_capability(__VA_ARGS__))
#define CCD_TRY_ACQUIRE(...) CCD_TSA(try_acquire_capability(__VA_ARGS__))
#define CCD_EXCLUDES(...) CCD_TSA(locks_excluded(__VA_ARGS__))
#define CCD_ASSERT_CAPABILITY(x) CCD_TSA(assert_capability(x))
#define CCD_RETURN_CAPABILITY(x) CCD_TSA(lock_returned(x))
#define CCD_NO_THREAD_SAFETY_ANALYSIS CCD_TSA(no_thread_safety_analysis)

namespace ccd {
namespace runtime {

/// std::mutex as a declared capability. Prefer MutexLock over manual
/// Lock()/Unlock() pairs.
class CCD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CCD_ACQUIRE() {
    if (sim::SimActive()) {
      sim::SimMutexLock(this);
      return;
    }
    mu_.lock();
  }
  void Unlock() CCD_RELEASE() {
    if (sim::SimActive()) {
      sim::SimMutexUnlock(this);
      return;
    }
    mu_.unlock();
  }
  bool TryLock() CCD_TRY_ACQUIRE(true) {
    if (sim::SimActive()) return sim::SimMutexTryLock(this);
    return mu_.try_lock();
  }

  // BasicLockable spelling so std::condition_variable_any can release and
  // reacquire this mutex inside CondVar::Wait(). Annotated exactly like
  // Lock()/Unlock(): user code calling these is analyzed the same way.
  void lock() CCD_ACQUIRE() { Lock(); }
  void unlock() CCD_RELEASE() { Unlock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex as a declared capability: one writer or many readers.
class CCD_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() CCD_ACQUIRE() {
    if (sim::SimActive()) {
      sim::SimSharedLock(this);
      return;
    }
    mu_.lock();
  }
  void Unlock() CCD_RELEASE() {
    if (sim::SimActive()) {
      sim::SimSharedUnlock(this);
      return;
    }
    mu_.unlock();
  }
  void LockShared() CCD_ACQUIRE_SHARED() {
    if (sim::SimActive()) {
      sim::SimSharedLockShared(this);
      return;
    }
    mu_.lock_shared();
  }
  void UnlockShared() CCD_RELEASE_SHARED() {
    if (sim::SimActive()) {
      sim::SimSharedUnlockShared(this);
      return;
    }
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold of a Mutex for the enclosing scope.
class CCD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CCD_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() CCD_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) hold of a SharedMutex.
class CCD_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) CCD_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() CCD_RELEASE_GENERIC() { mu_->UnlockShared(); }

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) hold of a SharedMutex. Functions that demand
/// proof of exclusivity across a call boundary take a `const WriterLock&`
/// (e.g. Router::AddSlot): under clang the analysis checks the capability
/// statically, and mutex() lets the callee verify lock *identity* at
/// runtime on every build.
class CCD_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) CCD_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() CCD_RELEASE() { mu_->Unlock(); }

  const SharedMutex* mutex() const { return mu_; }

 private:
  SharedMutex* const mu_;
};

/// Condition variable paired with runtime::Mutex. Wait() demands the
/// capability, so a wait outside the lock is a compile error under clang;
/// call it in an explicit `while (!predicate)` loop — the analysis cannot
/// see through predicate lambdas, so the std-style overloads are not
/// offered.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen: always re-check the predicate.
  void Wait(Mutex& mu) CCD_REQUIRES(mu) {
    if (sim::SimActive()) {
      sim::SimCondVarWait(this, &mu);
      return;
    }
    cv_.wait(mu);
  }
  void NotifyOne() {
    if (sim::SimActive()) {
      sim::SimCondVarNotifyOne(this);
      return;
    }
    cv_.notify_one();
  }
  void NotifyAll() {
    if (sim::SimActive()) {
      sim::SimCondVarNotifyAll(this);
      return;
    }
    cv_.notify_all();
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace runtime
}  // namespace ccd

#endif  // CCD_RUNTIME_SYNC_H_
