#ifndef CCD_RUNTIME_ROUTER_H_
#define CCD_RUNTIME_ROUTER_H_

#include <atomic>
#include <cstdint>

#include "runtime/sync.h"

namespace ccd {
namespace runtime {

/// How a Router picks the slot a push lands on.
enum class RoutingMode {
  kHashKey,    ///< Deterministic hash of a caller-supplied 64-bit key.
  kRoundRobin, ///< Successive pushes cycle over the slots.
};

const char* RoutingModeName(RoutingMode mode);

/// Concurrency spine of a sharded serving surface: the slot table of a
/// striped-lock discipline, with the discipline itself stated in Thread
/// Safety Analysis annotations rather than prose.
///
/// The Router owns the *table capability* (TableMutex()) and the routing
/// math; the per-slot mutexes and the payload live in the layer above
/// (api::ShardedMonitor keeps each shard's mutex inside the shard it
/// guards, where CCD_GUARDED_BY can see it). The lock order is
/// table-then-slot everywhere, and slot-holding code holds exactly one
/// slot, so the discipline is deadlock-free by construction — provided
/// slot-holding code never re-enters the Router (see the reentrancy notes
/// on api::ShardedMonitor's callbacks).
///
/// Annotated contract — violations are compile errors under clang
/// (-Wthread-safety; proven by tests/negative_compile/):
///  * RouteKey()/RouteNext() CCD_REQUIRES_SHARED(table): routing reads the
///    slot count, so a reader hold on the table pins it. Pushes routed to
///    different slots run fully in parallel; two pushes to the same slot
///    serialize on that slot's mutex only.
///  * AddSlot() CCD_REQUIRES(table) and takes the caller's WriterLock by
///    reference: growing the table demands *this* router's exclusive
///    table lock — every in-flight reader has drained, none can start.
///    The WriterLock parameter makes the requirement part of the
///    signature on every compiler; clang additionally rejects callers
///    that don't hold it.
class Router {
 public:
  /// `slots` is clamped to >= 1.
  Router(int slots, RoutingMode mode);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Deterministic 64-bit mix (splitmix64 finalizer): pure integer
  /// arithmetic, so key placement is stable across platforms, runs and
  /// processes — the published contract tests and external balancers can
  /// compute shard ownership with.
  static uint64_t HashKey(uint64_t key);

  /// The slot a key routes to in a `slots`-wide table:
  /// HashKey(key) % slots. Exposed statically so a caller can partition a
  /// keyed stream exactly as a live Router would (the differential tests
  /// rely on this).
  static int KeySlot(uint64_t key, int slots);

  RoutingMode mode() const { return mode_; }

  /// The table capability. Readers (ReaderLock) route and access existing
  /// slots; the exclusive writer (WriterLock) owns the reshard window —
  /// AddSlot() and payload swaps in the layer above.
  SharedMutex& TableMutex() const CCD_RETURN_CAPABILITY(table_mutex_) {
    return table_mutex_;
  }

  /// Current slot count. Takes the table lock; racing an AddSlot() the
  /// caller may see either count, so don't use the result to route —
  /// hold a ReaderLock and call RouteKey()/RouteNext() instead.
  int slots() const CCD_EXCLUDES(table_mutex_);

  /// The slot `key` routes to in the current table (any mode —
  /// round-robin tables still support keyed lookups, e.g. to label a
  /// parked prediction). The caller's shared table hold keeps the result
  /// valid.
  int RouteKey(uint64_t key) const CCD_REQUIRES_SHARED(table_mutex_);

  /// The next slot in round-robin order. Throws std::logic_error in
  /// kHashKey mode: silently round-robining keyed traffic would break the
  /// per-key ordering the hash contract promises.
  int RouteNext() CCD_REQUIRES_SHARED(table_mutex_);

  /// Bounds-checks a caller-supplied slot index (e.g. the shard id a
  /// Prediction ticket names) against the current table; throws
  /// std::out_of_range when it is not in the table.
  void RequireSlot(int slot) const CCD_REQUIRES_SHARED(table_mutex_);

  /// Appends one slot under the exclusive table lock and returns its
  /// index. Subsequent keyed routes hash over the grown table. Throws
  /// std::logic_error when `table` locks anything but this router's own
  /// table mutex (the runtime half of the contract; clang enforces the
  /// static half).
  int AddSlot(const WriterLock& table) CCD_REQUIRES(table_mutex_);

 private:
  mutable SharedMutex table_mutex_;
  int slots_ CCD_GUARDED_BY(table_mutex_);
  const RoutingMode mode_;
  std::atomic<uint64_t> next_{0};  ///< Round-robin cursor.
};

}  // namespace runtime
}  // namespace ccd

#endif  // CCD_RUNTIME_ROUTER_H_
