#ifndef CCD_RUNTIME_ROUTER_H_
#define CCD_RUNTIME_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace ccd {
namespace runtime {

/// How a Router picks the slot a push lands on.
enum class RoutingMode {
  kHashKey,    ///< Deterministic hash of a caller-supplied 64-bit key.
  kRoundRobin, ///< Successive pushes cycle over the slots.
};

const char* RoutingModeName(RoutingMode mode);

/// Concurrency spine of a sharded serving surface: a slot table (one slot
/// per shard) behind a striped-lock discipline. Callers acquire a Guard —
/// a shared lock on the table plus the exclusive lock of exactly one slot —
/// so pushes routed to *different* slots run fully in parallel while two
/// pushes to the same slot serialize on that slot's mutex only. Resharding
/// (adding a slot, swapping the state behind one) takes the table lock
/// exclusively, which drains every in-flight Guard first; the table is
/// never mutated under a reader.
///
/// The Router deliberately owns no payload: the engines live in the layer
/// above (api::ShardedMonitor), which stores them in a vector parallel to
/// the slot table. Lock order is table-then-slot everywhere, and a Guard
/// holds at most one slot mutex, so the discipline is deadlock-free by
/// construction — provided slot-holding code never re-enters the Router
/// (see the reentrancy notes on api::ShardedMonitor's callbacks).
class Router {
 public:
  /// `slots` is clamped to >= 1.
  Router(int slots, RoutingMode mode);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Deterministic 64-bit mix (splitmix64 finalizer): pure integer
  /// arithmetic, so key placement is stable across platforms, runs and
  /// processes — the published contract tests and external balancers can
  /// compute shard ownership with.
  static uint64_t HashKey(uint64_t key);

  /// The slot a key routes to in a `slots`-wide table:
  /// HashKey(key) % slots. Exposed statically so a caller can partition a
  /// keyed stream exactly as a live Router would (the differential tests
  /// rely on this).
  static int KeySlot(uint64_t key, int slots);

  RoutingMode mode() const { return mode_; }

  /// Current slot count. Takes the table lock; racing an AddSlot() the
  /// caller may see either count, so don't use the result to index slots —
  /// acquire a Guard instead.
  int slots() const;

  /// Shared table lock + exclusive lock of one slot. Movable; releases
  /// slot first, then the table view, on destruction.
  struct Guard {
    std::shared_lock<std::shared_mutex> table;
    std::unique_lock<std::mutex> slot_lock;
    int slot = -1;
  };

  /// Routes by key hash (any mode — round-robin tables still support keyed
  /// lookups, e.g. to label a parked prediction).
  Guard AcquireKey(uint64_t key);

  /// Routes to the next slot in round-robin order. Throws std::logic_error
  /// in kHashKey mode: silently round-robining keyed traffic would break
  /// the per-key ordering the hash contract promises.
  Guard AcquireNext();

  /// Locks a specific slot (e.g. the shard id a Prediction ticket names).
  /// Throws std::out_of_range when `slot` is not in the table.
  Guard AcquireSlot(int slot);

  /// Exclusive table lock: every Guard has drained and none can start
  /// until release. The reshard window — the holder may AddSlot() and swap
  /// payload state in the layer above.
  struct Exclusive {
    std::unique_lock<std::shared_mutex> table;
  };
  Exclusive LockTable();

  /// Appends one slot (with its mutex) under an exclusive lock and returns
  /// its index. Subsequent keyed routes hash over the grown table.
  int AddSlot(const Exclusive& exclusive);

 private:
  mutable std::shared_mutex table_mutex_;
  /// unique_ptr: std::mutex is immovable, the vector is not.
  std::vector<std::unique_ptr<std::mutex>> slot_mutexes_;
  const RoutingMode mode_;
  std::atomic<uint64_t> next_{0};  ///< Round-robin cursor.
};

}  // namespace runtime
}  // namespace ccd

#endif  // CCD_RUNTIME_ROUTER_H_
