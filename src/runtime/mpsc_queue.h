#ifndef CCD_RUNTIME_MPSC_QUEUE_H_
#define CCD_RUNTIME_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccd {
namespace runtime {

/// Bounded lock-free multi-producer / single-consumer queue (Vyukov's
/// bounded-MPMC cell design, used here with one consumer): the ingress
/// buffer in front of a shard lock, so producers hand work to a busy
/// shard without blocking on its mutex.
///
/// Properties the serving layer builds on:
///  * TryPush() never blocks and never allocates after a cell has held a
///    value once — cells store T by *copy assignment*, so a std::vector
///    payload reuses its heap buffer on every lap around the ring.
///  * A full queue fails the push (returns false) instead of growing:
///    backpressure is explicit, the memory bound is hard.
///  * FIFO per producer, and globally FIFO in ticket order: consumers see
///    entries in the order the producers won their cells.
///  * TryPop() is single-consumer only — callers must serialize it
///    externally (the shard lock does; see api::ShardedMonitor). It pops
///    by copy assignment into a caller-owned slot for the same
///    capacity-reuse reason.
///
/// Simulation note: the only synchronization is std::atomic, which the
/// deterministic scheduler does not interrupt — a TryPush or TryPop is one
/// sim-atomic step, so recording a history event next to a successful call
/// stays race-free under the sim harness.
template <typename T>
class MpscQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 1).
  explicit MpscQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Enqueues a copy of `value`; false when the queue is full. Safe from
  /// any number of threads.
  bool TryPush(const T& value) {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // The cell one lap behind is still occupied: full.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;  // Copy-assign: the cell's buffers are reused.
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues the oldest entry into `*out` (copy assignment); false when
  /// the queue is empty or the head entry's producer has claimed its cell
  /// but not finished writing it (it will succeed once the write lands —
  /// FIFO is never reordered around a slow producer). Single consumer.
  bool TryPop(T* out) {
    Cell& cell = cells_[head_ & mask_];
    const size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(head_ + 1) != 0) {
      return false;
    }
    *out = cell.value;
    cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  std::atomic<size_t> tail_{0};  ///< Next producer ticket.
  size_t head_ = 0;  ///< Consumer cursor; guarded by the external consumer
                     ///< serialization (the shard lock in the layer above).
};

}  // namespace runtime
}  // namespace ccd

#endif  // CCD_RUNTIME_MPSC_QUEUE_H_
