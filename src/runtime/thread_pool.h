#ifndef CCD_RUNTIME_THREAD_POOL_H_
#define CCD_RUNTIME_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/sync.h"

namespace ccd {
namespace runtime {

/// Fixed-size thread pool over a FIFO work queue — the execution layer of
/// the experiment-suite runner (api::Suite) and of any future intra-stream
/// sharding. Tasks are opaque thunks; determinism is the *caller's*
/// contract: a task must write only to state it owns (e.g. its own slot of
/// a pre-sized result vector), so results are identical whatever order the
/// workers pick tasks in.
///
/// Tasks must not throw — wrap the body and capture the exception into a
/// per-task slot (api::Suite stores an std::exception_ptr per cell and
/// rethrows the first one, in task order, after Wait()).
class ThreadPool {
 public:
  /// Spawns `threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int threads);

  /// Drains nothing: pending tasks are abandoned only if the pool dies
  /// before Wait(); call Wait() first for orderly shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing (queue empty
  /// and no task in flight).
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Default worker count: hardware_concurrency, with a floor of 1 for
  /// platforms that report 0.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ CCD_GUARDED_BY(mutex_);
  /// Tasks popped but not yet finished.
  std::size_t in_flight_ CCD_GUARDED_BY(mutex_) = 0;
  bool stop_ CCD_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0..n-1) across `threads` workers and blocks until all calls
/// return. Convenience wrapper for embarrassingly parallel index loops;
/// exceptions escaping `fn` propagate to the caller (the first one in
/// index order; the remaining indices still run).
void ParallelFor(int threads, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Runs `fn(0) .. fn(threads-1)` on `threads` *dedicated* threads that
/// all start together: every thread parks on a start barrier until the
/// last one is up, so the calls genuinely contend instead of running in
/// spawn order — the launcher behind the serving benchmarks and the
/// router stress tests. Joins all threads before returning; the first
/// exception (in thread-index order) is rethrown on the calling thread.
/// Unlike ParallelFor this bypasses the pool: each index owns a real
/// thread for its whole lifetime, which is the point when measuring or
/// stressing lock contention.
void RunThreads(int threads, const std::function<void(int)>& fn);

}  // namespace runtime
}  // namespace ccd

#endif  // CCD_RUNTIME_THREAD_POOL_H_
