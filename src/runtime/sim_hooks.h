#ifndef CCD_RUNTIME_SIM_HOOKS_H_
#define CCD_RUNTIME_SIM_HOOKS_H_

/// The seam between runtime/sync.h and the deterministic simulation
/// scheduler (runtime/sim.h). Every lock/condvar operation on the
/// annotated wrappers first asks SimActive(): on a thread that belongs to
/// a running sim::Scheduler the operation is routed to the scheduler's
/// cooperative state machines (identified by the primitive's address);
/// on every other thread it falls through to the raw std primitive.
///
/// This header is deliberately tiny — declarations only — so sync.h can
/// include it without pulling the scheduler machinery into every
/// translation unit that takes a lock.
///
/// The capability annotations live on the sync.h wrappers, not here: the
/// shim changes *when* a lock operation completes, never what capability
/// it confers, so -Wthread-safety sees the exact same API either way.

namespace ccd {
namespace runtime {
namespace sim {

/// True iff the calling thread is a task of a running Scheduler.
/// Out-of-line on purpose: sync.h must not need the scheduler's state.
bool SimActive() noexcept;

// Mutex operations, keyed by the wrapper's address.
void SimMutexLock(void* mu);
bool SimMutexTryLock(void* mu);
void SimMutexUnlock(void* mu);

// SharedMutex operations (exclusive and shared sides).
void SimSharedLock(void* mu);
void SimSharedUnlock(void* mu);
void SimSharedLockShared(void* mu);
void SimSharedUnlockShared(void* mu);

// CondVar operations. Wait atomically releases the sim-held mutex,
// parks the task, and reacquires after a notify reaches it.
void SimCondVarWait(void* cv, void* mu);
void SimCondVarNotifyOne(void* cv);
void SimCondVarNotifyAll(void* cv);

}  // namespace sim
}  // namespace runtime
}  // namespace ccd

#endif  // CCD_RUNTIME_SIM_HOOKS_H_
